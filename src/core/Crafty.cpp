//===- core/Crafty.cpp - Crafty persistent transactions -------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"

#include "check/PersistCheck.h"
#include "check/TxRaceCheck.h"
#include "support/Clock.h"
#include "support/Spin.h"

#include <algorithm>

using namespace crafty;

namespace {
/// Accumulates wall-clock time into a stats counter when enabled.
class PhaseTimer {
public:
  PhaseTimer(bool Enabled, uint64_t &Sink)
      : Sink(Enabled ? &Sink : nullptr),
        Start(Enabled ? monotonicNanos() : 0) {}
  ~PhaseTimer() {
    if (Sink)
      *Sink += monotonicNanos() - Start;
  }

private:
  uint64_t *Sink;
  uint64_t Start;
};
} // namespace

PtmBackend::~PtmBackend() = default;

//===----------------------------------------------------------------------===//
// CraftyRuntime
//===----------------------------------------------------------------------===//

CraftyRuntime::CraftyRuntime(PMemPool &Pool, HtmRuntime &Htm,
                             CraftyConfig Config)
    : CraftyRuntime(Pool, Htm, Config, /*Attach=*/false) {}

CraftyRuntime::CraftyRuntime(PMemPool &Pool, HtmRuntime &Htm,
                             CraftyConfig Config, bool Attach)
    : Pool(Pool), Htm(Htm), Config(Config) {
  if (Config.NumThreads == 0 ||
      Config.NumThreads > Pool.config().MaxThreads)
    fatalError("CraftyRuntime: bad thread count for the pool");
  if (Config.LogEntriesPerThread < 64 ||
      (Config.LogEntriesPerThread & (Config.LogEntriesPerThread - 1)) != 0)
    fatalError("CraftyRuntime: log size must be a power of two >= 64");
  Htm.setMemoryHooks(Pool.htmHooks());
  // Forward the contention knobs into the HTM engine before any context
  // (and thus any transaction) exists.
  HtmTuning Tuning;
  Tuning.SnapshotExtension = Config.SnapshotExtension;
  Tuning.SortWriteSet = Config.SortWriteSet;
  Tuning.WriteSetHashThreshold = Config.WriteSetHashThreshold;
  Htm.setTuning(Tuning);
  if (Attach) {
    Header = reinterpret_cast<PoolHeader *>(Pool.base());
    if (Header->Magic != PoolMagic ||
        Header->NumThreads != Config.NumThreads ||
        Header->LogEntriesPerThread != Config.LogEntriesPerThread)
      fatalError("CraftyRuntime::attach: pool header does not match the "
                 "configuration");
    // Recovery zeroed the logs and the header still maps this process's
    // addresses; the thread contexts below start at log position zero.
    if (Config.ArenaBytesPerThread)
      fatalError("CraftyRuntime::attach: allocator arenas cannot be "
                 "re-established on attach");
  } else {
    Header = formatPool(Pool, Config.NumThreads,
                        Config.LogEntriesPerThread, /*HeapBytes=*/0);
    if (Config.ArenaBytesPerThread)
      Alloc = std::make_unique<PMemAllocator>(Pool, Config.NumThreads,
                                              Config.ArenaBytesPerThread);
  }
  if (Config.EnablePersistCheck) {
    Checker = std::make_unique<PersistCheck>(Pool);
    for (unsigned I = 0; I != Config.NumThreads; ++I) {
      UndoLogRegion Region = logRegionFor(Pool.base(), *Header, I);
      Checker->registerLogRegion(I, Region.Slots, Region.NumEntries);
    }
    Checker->attach();
  }
  if (Config.EnableTxRaceCheck) {
    RaceChecker = std::make_unique<TxRaceCheck>(Pool);
    // The per-thread undo logs are written by design from many threads'
    // forced commits (Section 5.2), always transactionally; exempt them
    // so only program data is race-checked.
    for (unsigned I = 0; I != Config.NumThreads; ++I) {
      UndoLogRegion Region = logRegionFor(Pool.base(), *Header, I);
      RaceChecker->registerExemptRegion(Region.Slots, Region.regionBytes());
    }
    RaceChecker->installHtmHooks(Htm);
  }
  Threads.reserve(Config.NumThreads);
  for (unsigned I = 0; I != Config.NumThreads; ++I)
    Threads.push_back(std::make_unique<CraftyThread>(*this, I));
}

std::unique_ptr<CraftyRuntime>
CraftyRuntime::attach(PMemPool &Pool, HtmRuntime &Htm, CraftyConfig Config) {
  return std::unique_ptr<CraftyRuntime>(
      new CraftyRuntime(Pool, Htm, Config, /*Attach=*/true));
}

CraftyRuntime::~CraftyRuntime() {
  if (RaceChecker)
    RaceChecker->removeHtmHooks(Htm);
  if (Checker)
    Checker->detach();
}

const char *CraftyRuntime::name() const {
  if (Config.Mode == CraftyMode::ThreadUnsafe)
    return "Crafty-Unsafe";
  if (Config.DisableRedo)
    return "Crafty-NoRedo";
  if (Config.DisableValidate)
    return "Crafty-NoValidate";
  return "Crafty";
}

PtmStats CraftyRuntime::txnStats() const {
  PtmStats S;
  for (const auto &T : Threads)
    S += T->txnStats();
  return S;
}

HtmStats CraftyRuntime::htmStats() const {
  HtmStats S;
  for (const auto &T : Threads) {
    S += T->htmStats();
    S += T->ForceTx.stats();
  }
  return S;
}

HtmStats CraftyRuntime::htmStatsFor(unsigned ThreadId) const {
  HtmStats S = Threads[ThreadId]->htmStats();
  S += Threads[ThreadId]->ForceTx.stats();
  return S;
}

bool CraftyRuntime::forceEmptyCommit(CraftyThread &Forcer,
                                     CraftyThread &Victim,
                                     uint64_t *ForcedHeadOut) {
  size_t TagSlot = 0;
  uint64_t ForcedHead = 0;
  TxResult R = runHtmTx(Forcer.ForceTx, [&](HtmTx &T) {
    uint64_t Abs = T.load(&Victim.HeadShared);
    TagSlot = Victim.Log.slotFor(Abs);
    unsigned Pass = Victim.Log.passFor(Abs);
    T.store(Victim.Log.addrWordAt(TagSlot), TagLogged | Pass);
    T.storeCommitVersion(Victim.Log.valWordAt(TagSlot),
                         TagTsCommitVersionShift, Pass);
    T.store(&Victim.HeadShared, Abs + 1);
    T.storeCommitVersion(&Victim.LastCommittedTs);
    ForcedHead = Abs + 1;
  });
  if (!R.Committed)
    return false;
  if (ForcedHeadOut)
    *ForcedHeadOut = ForcedHead;
  // Flushed by the forcer; drained at the forcer's next commit fence,
  // i.e. before any entry the forcer may then overwrite can persist.
  Pool.clwb(Forcer.ThreadId, Victim.Log.addrWordAt(TagSlot));
  // The victim is delinquent: its last flushes were issued long ago and
  // have completed on real hardware. Moving its rollback horizon forward
  // (the forced tag) is only sound once those writes are persistent.
  Pool.drainRemote(Victim.ThreadId);
  return true;
}

void CraftyRuntime::runExpensiveChecks(CraftyThread &Forcer,
                                       uint64_t TargetTs) {
  // Bring every thread's last committed transaction to ts >= TargetTs,
  // forcing empty commits into delinquent threads' logs (Section 5.2).
  // A forced commit's ts is a fresh commit version, which exceeds any
  // already-written timestamp and in particular TargetTs whenever
  // TargetTs <= the clock at the force (true for both callers).
  for (auto &VictimPtr : Threads) {
    CraftyThread &Victim = *VictimPtr;
    for (unsigned Try = 0;; ++Try) {
      if (Htm.nonTxLoad(&Victim.LastCommittedTs) >= TargetTs)
        break;
      if (forceEmptyCommit(Forcer, Victim))
        break;
      if (Try >= Config.ForceRetryLimit) {
        // The victim keeps aborting our force transaction, so it is
        // actively committing; wait for its own timestamp to pass the
        // target rather than racing it.
        std::this_thread::yield();
      }
      if (Try > Config.ForceRetryLimit * 1024)
        fatalError("log maintenance cannot force a delinquent thread "
                   "(hardware transactions never commit?)");
    }
  }
  uint64_t Min = ~0ull;
  for (auto &T : Threads)
    Min = std::min(Min, Htm.nonTxLoad(&T->LastCommittedTs));
  // Monotonically raise the published lower bound.
  uint64_t Cur = TsLowerBound.load(std::memory_order_relaxed);
  while (Cur < Min &&
         !TsLowerBound.compare_exchange_weak(Cur, Min,
                                             std::memory_order_relaxed)) {
  }
}

void CraftyRuntime::persistBarrier(unsigned CallerThreadId) {
  PersistBarrierTicket T;
  persistBarrierBegin(CallerThreadId, T);
  persistBarrierEnd(CallerThreadId, T);
}

void CraftyRuntime::persistBarrierBegin(unsigned CallerThreadId,
                                        PersistBarrierTicket &T) {
  // Persist every committed write (models a full cache write-back), then
  // move every thread's last sequence past all prior transactions so
  // recovery's rollback threshold lands after them.
  // Fast path: if every context's head still equals the value a previous
  // barrier published after its drain, no transaction has committed
  // anywhere since a fully persisted barrier, so its horizon -- and every
  // flush it performed -- still covers the pool. The check must hold for
  // all contexts at once; see CraftyThread::ForcedUpTo.
  T.Pending = false;
  bool Quiet = true;
  for (auto &Th : Threads)
    if (Htm.nonTxLoad(&Th->HeadShared) !=
        Th->ForcedUpTo.load(std::memory_order_acquire)) {
      Quiet = false;
      break;
    }
  if (Quiet)
    return;
  // The write-back latency is charged to the caller's drain deadline;
  // persistBarrierEnd's drain waits it out together with the forced
  // tags' CLWBs below.
  Pool.flushEverythingDeferred(CallerThreadId);
  CraftyThread &Caller = *Threads[CallerThreadId];
  T.Pending = true;
  T.ForcedHeads.assign(Threads.size(), 0);
  for (size_t I = 0; I != Threads.size(); ++I) {
    for (unsigned Try = 0; Try != Config.ForceRetryLimit; ++Try) {
      if (forceEmptyCommit(Caller, *Threads[I], &T.ForcedHeads[I]))
        break;
      std::this_thread::yield();
    }
  }
}

void CraftyRuntime::persistBarrierEnd(unsigned CallerThreadId,
                                      PersistBarrierTicket &T) {
  if (!T.Pending)
    return;
  T.Pending = false;
  Pool.drain(CallerThreadId); // Persist the write-back + the forced tags.
  // Publish the forced heads only now that the tags have drained; a 0
  // means the force lost every retry to an actively committing context,
  // whose moving head would fail the fast-path check anyway.
  for (size_t I = 0; I != Threads.size(); ++I)
    if (T.ForcedHeads[I])
      Threads[I]->ForcedUpTo.store(T.ForcedHeads[I],
                                   std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// CraftyThread: context plumbing
//===----------------------------------------------------------------------===//

CraftyThread::CraftyThread(CraftyRuntime &Rt, unsigned ThreadId)
    : Rt(Rt), ThreadId(ThreadId), Check(Rt.Checker.get()),
      Race(Rt.RaceChecker.get()),
      Tx(Rt.Htm, ThreadId, /*RngSeed=*/ThreadId + 1),
      ForceTx(Rt.Htm, ThreadId, /*RngSeed=*/ThreadId + 1000003),
      Log(logRegionFor(Rt.Pool.base(), *Rt.Header, ThreadId)),
      RetryBackoff(Rt.Config.BackoffMinSpins, Rt.Config.BackoffMaxSpins,
                   /*Seed=*/ThreadId + 7) {
  Mirror.reserve(1024);
  SectionMirror.reserve(1024);
  ChunkMirror.reserve(Rt.Config.InitialChunkK + 1);
}

uint64_t CraftyThread::sharedHead() const {
  return Rt.Htm.nonTxLoad(&HeadShared);
}

uint64_t CraftyThread::Context::load(const uint64_t *Addr) {
  return T.ctxLoad(Addr);
}
void CraftyThread::Context::store(uint64_t *Addr, uint64_t Val) {
  T.ctxStore(Addr, Val);
}
void *CraftyThread::Context::alloc(size_t Bytes) { return T.ctxAlloc(Bytes); }
void CraftyThread::Context::dealloc(void *Ptr) { T.ctxDealloc(Ptr); }

uint64_t CraftyThread::ctxLoad(const uint64_t *Addr) {
  switch (CurPhase) {
  case Phase::Log:
  case Phase::Validate:
    return Tx.load(Addr);
  case Phase::SglChunk:
    return Tx.inTransaction() ? Tx.load(Addr) : Rt.Htm.nonTxLoad(Addr);
  case Phase::Idle:
    break;
  }
  CRAFTY_UNREACHABLE("transactional load with no transaction running");
}

void CraftyThread::ctxStore(uint64_t *Addr, uint64_t Val) {
  assert(isWordAligned(Addr) && "persistent writes must be 8-byte aligned");
  assert(Rt.Pool.contains(Addr) &&
         "transactional writes must target persistent memory");
  switch (CurPhase) {
  case Phase::Log: {
    ++DynWrites;
    // Coalesce repeated stores to one word into a single undo entry (the
    // first old value is all recovery's undo replay needs): update the
    // redo value in place and skip the load + two streaming stores a
    // fresh entry would cost. The body's stores are exactly the
    // transaction's buffered writes at this point, so the HTM write
    // buffer doubles as the word -> Mirror-index map via storeTagged.
    if (uint32_t *MirrorIdx = Tx.writtenWordTag(Addr)) {
      Mirror[*MirrorIdx].New = Val;
      Tx.store(Addr, Val);
      return;
    }
    if (Mirror.size() >= maxSeqEntries())
      Tx.abortExplicit(AbortUserSeqOverflow);
    uint64_t Old = Tx.load(Addr);
    stageUndoEntry(HeadAtStart + Mirror.size(), Addr, Old);
    Mirror.push_back(MirrorEntry{Addr, Old, Val});
    Tx.storeTagged(Addr, Val, (uint32_t)(Mirror.size() - 1));
    return;
  }
  case Phase::Validate: {
    // A repeat store to an already-written word was coalesced by the Log
    // phase: the deterministic re-execution reproduces it, and only the
    // word's first store has an undo entry to match.
    if (Tx.writtenWordTag(Addr)) {
      Tx.store(Addr, Val);
      return;
    }
    // Algorithm 3: the next undo entry must match this write's address
    // and the current memory value; otherwise another thread committed
    // conflicting writes since the Log phase.
    if (ValidateCursor >= Mirror.size()) {
      if (CRAFTY_UNLIKELY(Race != nullptr))
        Race->noteValidateDivergence(ThreadId, Addr, nullptr);
      Tx.abortExplicit(AbortUserValidateFail);
    }
    const MirrorEntry &E = Mirror[ValidateCursor];
    if (E.Addr != Addr || Tx.load(Addr) != E.Old) {
      if (CRAFTY_UNLIKELY(Race != nullptr))
        Race->noteValidateDivergence(ThreadId, Addr, E.Addr);
      Tx.abortExplicit(AbortUserValidateFail);
    }
    ++ValidateCursor;
    Tx.store(Addr, Val);
    return;
  }
  case Phase::SglChunk:
    chunkedStore(Addr, Val);
    return;
  case Phase::Idle:
    break;
  }
  CRAFTY_UNREACHABLE("transactional store with no transaction running");
}

void *CraftyThread::ctxAlloc(size_t Bytes) {
  PMemAllocator *A = Rt.Alloc.get();
  if (!A)
    fatalError("TxnContext::alloc without a configured allocator arena");
  if (CurPhase == Phase::Validate) {
    // Reuse the memory allocated by the Log phase (paper Section 6).
    if (AllocCursor >= AllocLog.size()) {
      if (CRAFTY_UNLIKELY(Race != nullptr))
        Race->noteValidateDivergence(ThreadId, nullptr, nullptr);
      Tx.abortExplicit(AbortUserValidateFail);
    }
    return AllocLog[AllocCursor++];
  }
  void *P = A->alloc(ThreadId, Bytes);
  if (P)
    AllocLog.push_back(P);
  return P;
}

void CraftyThread::ctxDealloc(void *Ptr) {
  // Deferred until commit so re-execution and aborts never double-free.
  if (Ptr)
    FreeLog.push_back(Ptr);
}

void CraftyThread::resetAttemptState() {
  if (PMemAllocator *A = Rt.Alloc.get())
    for (void *P : AllocLog)
      A->dealloc(ThreadId, P);
  AllocLog.clear();
  AllocCursor = 0;
  FreeLog.clear();
  Mirror.clear();
  DynWrites = 0;
  ValidateCursor = 0;
}

void CraftyThread::performDeferredFrees() {
  if (PMemAllocator *A = Rt.Alloc.get())
    for (void *P : FreeLog)
      A->dealloc(ThreadId, P);
  FreeLog.clear();
  AllocLog.clear(); // Committed: the allocations are now owned by the app.
  AllocCursor = 0;
}

void CraftyThread::waitSglFree() {
  ++Stats.SglWaits;
  // Capped spin: past the bound, yield on every iteration. The SGL
  // holder may be descheduled (a loaded or oversubscribed box), and an
  // unbounded pause-heavy spin would burn this thread's quantum without
  // letting the holder run.
  unsigned Spins = 0;
  while (HtmRuntime::plainLoad(&Rt.SglWord) != 0) {
    if (++Spins > Rt.Config.SglWaitSpinBound)
      std::this_thread::yield();
    else
      cpuPause();
  }
}

//===----------------------------------------------------------------------===//
// CraftyThread: undo-log staging
//===----------------------------------------------------------------------===//

void CraftyThread::stageUndoEntry(uint64_t AbsPos, uint64_t *Addr,
                                  uint64_t Old) {
  size_t Slot = Log.slotFor(AbsPos);
  unsigned Pass = Log.passFor(AbsPos);
  EncodedEntry E =
      encodeDataEntry(reinterpret_cast<uint64_t>(Addr), Old, Pass);
  // Streaming stores: log slots are write-once and never loaded back
  // within the transaction (on real HTM these are plain stores).
  Tx.storeStream(Log.addrWordAt(Slot), E.AddrWord);
  Tx.storeStream(Log.valWordAt(Slot), E.ValWord);
}

void CraftyThread::flushStagedEntries(uint64_t FromAbs, uint64_t ToAbs) {
  // Also flush the predecessor slot: it may hold a tag another thread
  // forced into our log (Section 5.2) whose CLWB sits in that thread's
  // queue. Recovery's backward sequence walk needs the predecessor
  // boundary persisted no later than our entries.
  if (FromAbs > 0)
    --FromAbs;
  // The staged slots are contiguous in the circular log (each entry's
  // addr and val words share one 16-byte-aligned slot), so the whole
  // flush is one line-stepped range -- two when the sequence wraps the
  // log end. A sequence never exceeds half the log (maxSeqEntries), so
  // the two pieces cannot overlap.
  size_t First = Log.slotFor(FromAbs);
  uint64_t Count = ToAbs - FromAbs + 1;
  uint64_t Tail = std::min<uint64_t>(Count, Log.NumEntries - First);
  Rt.Pool.clwbRange(ThreadId, Log.addrWordAt(First),
                    Tail * UndoLogRegion::EntryBytes);
  if (Count > Tail)
    Rt.Pool.clwbRange(ThreadId, Log.addrWordAt(0),
                      (Count - Tail) * UndoLogRegion::EntryBytes);
}

void CraftyThread::flushDataLines(const std::vector<MirrorEntry> &Entries,
                                  void *ExtraWord) {
  FlushLineScratch.clear();
  for (const MirrorEntry &E : Entries)
    FlushLineScratch.push_back(E.Addr);
  if (ExtraWord)
    FlushLineScratch.push_back(ExtraWord);
  // Sort by line index so same-line addresses are adjacent: the pool's
  // pending-line filter then coalesces each line's repeats into one
  // scheduled write-back regardless of filter collisions.
  std::sort(FlushLineScratch.begin(), FlushLineScratch.end(),
            [](const void *A, const void *B) { return lineOf(A) < lineOf(B); });
  Rt.Pool.clwbLines(ThreadId, FlushLineScratch.data(),
                    FlushLineScratch.size());
}

void CraftyThread::noteTagWritten(uint64_t TagAbsPos, uint64_t Ts) {
  size_t Half = Log.NumEntries / 2;
  uint64_t HalfIdx = TagAbsPos / Half;
  unsigned Region = HalfIdx & 1;
  if (FirstTsHalfIdx[Region] != HalfIdx) {
    FirstTsHalfIdx[Region] = HalfIdx;
    FirstTsInHalf[Region] = Ts;
  }
}

void CraftyThread::maybeMaintainLog(uint64_t EntriesNeeded) {
  uint64_t TsLb = Rt.TsLowerBound.load(std::memory_order_relaxed);
  uint64_t Gvc = Rt.Htm.globalClock();
  // MAX_LAG bound (Section 5.2): recovery must never need to roll back
  // more than MaxLag commits; force delinquent threads forward.
  uint64_t Target = 0;
  if (Gvc >= TsLb + Rt.Config.MaxLag)
    Target = Gvc + 1 - Rt.Config.MaxLag;

  size_t Half = Log.NumEntries / 2;
  uint64_t HeadNow = sharedHead();
  uint64_t CurHalfIdx = HeadNow / Half;
  uint64_t EndHalfIdx = (HeadNow + EntriesNeeded) / Half;
  if (EndHalfIdx != CurHalfIdx && EndHalfIdx >= 2) {
    // About to overwrite the log half written two halves ago. Recovery
    // rolls back every sequence with ts >= the minimum over threads of
    // their last sequence's ts, so overwriting is safe only once every
    // thread's last committed ts exceeds the *newest* entry discarded.
    // That newest entry predates the oldest entry of the half written
    // one pass later, whose first tag ts we track; when unknown, bound
    // by the current clock (every logged entry predates it).
    unsigned NewerRegion = (EndHalfIdx - 1) & 1;
    uint64_t OverwriteBound =
        FirstTsHalfIdx[NewerRegion] == EndHalfIdx - 1
            ? FirstTsInHalf[NewerRegion]
            : Gvc + 1;
    if (TsLb < OverwriteBound)
      Target = std::max(Target, OverwriteBound);
  }
  if (Target)
    Rt.runExpensiveChecks(*this, Target);
  // The forced tags are flushed by the forcer and the victims' earlier
  // flushes completed (drainRemote), so proceeding is safe: recovery's
  // rollback threshold can no longer reach the entries we overwrite.
}

//===----------------------------------------------------------------------===//
// CraftyThread: thread-safe mode (Figure 3)
//===----------------------------------------------------------------------===//

void CraftyThread::run(TxnBody Body) {
  if (CRAFTY_UNLIKELY(Check != nullptr))
    Check->beginTxn(ThreadId);
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->beginTxn(ThreadId);
  if (Rt.Config.Mode == CraftyMode::ThreadUnsafe) {
    resetAttemptState();
    runChunkedSection(Body, /*AcquireSgl=*/false);
  } else if (!tryThreadSafe(Body)) {
    runChunkedSection(Body, /*AcquireSgl=*/true);
  }
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->endTxn(ThreadId);
  if (CRAFTY_UNLIKELY(Check != nullptr))
    Check->endTxn();
}

bool CraftyThread::tryThreadSafe(TxnBody Body) {
  unsigned Attempts = 0;
  RetryBackoff.reset();
  for (;;) {
    resetAttemptState();
    LogOutcome LO = logPhase(Body);
    if (LO == LogOutcome::SglHeld) {
      waitSglFree();
      continue;
    }
    if (LO == LogOutcome::Aborted) {
      // Abort-cause-aware policy: a Capacity abort is deterministic for
      // this body (the footprint will not fit next time either), so go
      // straight to the chunked fallback instead of burning the retry
      // budget; Conflict and Zero aborts back off -- bounded exponential
      // with jitter, yielding past the cap -- before retrying, giving the
      // conflicting committer (often descheduled mid-commit on a loaded
      // box) time to finish instead of re-aborting instantly.
      if (Tx.abortUserCode() == AbortUserSeqOverflow)
        return false; // Too large for one sequence; the chunked mode
                      // splits it (Figure 4).
      if (Tx.abortCode() == AbortCode::Capacity)
        return false;
      if (++Attempts >= Rt.Config.SglAttemptThreshold)
        return false;
      RetryBackoff.backoff();
      continue;
    }
    if (LO == LogOutcome::ReadOnly) {
      if (CRAFTY_UNLIKELY(!Rt.Config.ReadOnlyClockElision))
        Rt.Htm.advanceClock(); // Ablation: the naive bump-per-commit.
      ++Stats.ReadOnly;
      performDeferredFrees();
      return true;
    }
    if (Rt.Config.TestAfterLogCommit)
      Rt.Config.TestAfterLogCommit(Rt.Config.TestHookCtx, ThreadId);

    // Redo phase (skipped by Crafty-NoRedo).
    bool TryValidate = Rt.Config.DisableRedo;
    if (!Rt.Config.DisableRedo) {
      unsigned RedoTries = 0;
      for (;;) {
        PhaseOutcome PO = redoPhase();
        if (PO == PhaseOutcome::Committed) {
          finishCommit(/*ViaRedo=*/true);
          return true;
        }
        if (PO == PhaseOutcome::CheckFailed) {
          TryValidate = true;
          break;
        }
        if (PO == PhaseOutcome::SglHeld) {
          waitSglFree();
          continue;
        }
        if (++Attempts >= Rt.Config.SglAttemptThreshold)
          return false;
        if (++RedoTries >= Rt.Config.RedoRetries) {
          TryValidate = true;
          break;
        }
        RetryBackoff.backoff(); // Conflict abort: let the committer finish.
      }
    }

    // Validate phase (skipped by Crafty-NoValidate).
    if (TryValidate && !Rt.Config.DisableValidate) {
      bool Restart = false;
      for (;;) {
        PhaseOutcome PO = validatePhase(Body);
        if (PO == PhaseOutcome::Committed) {
          finishCommit(/*ViaRedo=*/false);
          return true;
        }
        if (PO == PhaseOutcome::CheckFailed) {
          Restart = true; // Conflicting commit: start over (Figure 3).
          break;
        }
        if (PO == PhaseOutcome::SglHeld) {
          waitSglFree();
          continue;
        }
        if (++Attempts >= Rt.Config.SglAttemptThreshold)
          return false;
        RetryBackoff.backoff(); // Conflict abort: let the committer finish.
      }
      (void)Restart;
    }

    // Either validation failed or this is Crafty-NoValidate after a
    // failed Redo check: re-execute from the Log phase. The abandoned
    // LOGGED sequence is harmless to recovery (rolling it back applies
    // values that are current at its place in the rollback order).
    if (++Attempts >= Rt.Config.SglAttemptThreshold)
      return false;
  }
}

CraftyThread::LogOutcome CraftyThread::logPhase(TxnBody Body) {
  if (CRAFTY_UNLIKELY(Check != nullptr))
    Check->setPhase("log");
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->setPhase(ThreadId, "log");
  maybeMaintainLog(maxSeqEntries() + 1);
  PhaseTimer Timer(Rt.Config.CollectPhaseTimings, Stats.LogPhaseNs);
  CurPhase = Phase::Log;
  bool ReadOnly = false;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    if (T.load(&Rt.SglWord) != 0)
      T.abortExplicit(AbortUserSglHeld);
    HeadAtStart = T.load(&HeadShared);
    Mirror.clear();
    Body(Ctx);
    if (Mirror.empty()) {
      ReadOnly = true; // Read-only fast path: no log, no Redo/Validate.
      return;
    }
    // Nondestructive undo logging: roll the writes back in reverse order.
    // At each reverse step the location's current value equals that
    // mirror entry's New, so the redo values are already in hand.
    for (size_t I = Mirror.size(); I-- > 0;) {
      // Bounded by the HTM capacity abort itself: the body's stores and
      // this rollback together fit or the transaction never commits.
      CRAFTY_TX_BOUND(Mirror.size());
      T.store(Mirror[I].Addr, Mirror[I].Old);
    }
    TagAbs = HeadAtStart + Mirror.size();
    size_t Slot = Log.slotFor(TagAbs);
    TagPass = Log.passFor(TagAbs);
    T.store(Log.addrWordAt(Slot), TagLogged | TagPass);
    T.storeCommitVersion(Log.valWordAt(Slot), TagTsCommitVersionShift,
                         TagPass);
    T.store(&HeadShared, TagAbs + 1);
  });
  CurPhase = Phase::Idle;
  if (R.Committed) {
    if (ReadOnly)
      return LogOutcome::ReadOnly;
    LastTs = R.CommitVersion;
    noteTagWritten(TagAbs, LastTs);
    // Flush the undo entries with no drain: the Redo or Validate phase
    // commits inside a hardware transaction, whose commit fence drains.
    flushStagedEntries(HeadAtStart, TagAbs);
    return LogOutcome::Committed;
  }
  if (R.Code == AbortCode::Explicit && R.UserCode == AbortUserSglHeld)
    return LogOutcome::SglHeld;
  return LogOutcome::Aborted;
}

CraftyThread::PhaseOutcome CraftyThread::redoPhase() {
  if (CRAFTY_UNLIKELY(Check != nullptr))
    Check->setPhase("redo");
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->setPhase(ThreadId, "redo");
  PhaseTimer Timer(Rt.Config.CollectPhaseTimings, Stats.RedoPhaseNs);
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    if (T.load(&Rt.SglWord) != 0)
      T.abortExplicit(AbortUserSglHeld);
    // Algorithm 2: the Redo phase may apply the redo log only if no
    // transaction committed writes since our Log phase.
    if (T.load(&Rt.GLastRedoTs) >= LastTs)
      T.abortExplicit(AbortUserRedoCheck);
    for (const MirrorEntry &E : Mirror) { // Program order.
      // Bounded by construction: this exact write set already fit in
      // one hardware transaction during the Log phase.
      CRAFTY_TX_BOUND(Mirror.size());
      T.store(E.Addr, E.New);
    }
    T.storeCommitVersion(&Rt.GLastRedoTs);
    // Merged LOGGED/COMMITTED entry: overwrite the timestamp (Section 6).
    T.storeCommitVersion(Log.valWordAt(Log.slotFor(TagAbs)),
                         TagTsCommitVersionShift, TagPass);
    T.storeCommitVersion(&LastCommittedTs);
  });
  if (R.Committed) {
    noteTagWritten(TagAbs, R.CommitVersion);
    return PhaseOutcome::Committed;
  }
  if (R.Code == AbortCode::Explicit) {
    if (R.UserCode == AbortUserSglHeld)
      return PhaseOutcome::SglHeld;
    if (R.UserCode == AbortUserRedoCheck)
      return PhaseOutcome::CheckFailed;
  }
  return PhaseOutcome::Aborted;
}

CraftyThread::PhaseOutcome CraftyThread::validatePhase(TxnBody Body) {
  if (CRAFTY_UNLIKELY(Check != nullptr))
    Check->setPhase("validate");
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->setPhase(ThreadId, "validate");
  PhaseTimer Timer(Rt.Config.CollectPhaseTimings, Stats.ValidatePhaseNs);
  CurPhase = Phase::Validate;
  TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
    if (T.load(&Rt.SglWord) != 0)
      T.abortExplicit(AbortUserSglHeld);
    ValidateCursor = 0;
    AllocCursor = 0;
    FreeLog.clear(); // Re-recorded by this execution.
    Body(Ctx);
    // Algorithm 3 line 8: all log entries must have been consumed.
    if (ValidateCursor != Mirror.size()) {
      if (CRAFTY_UNLIKELY(Race != nullptr))
        Race->noteValidateDivergence(ThreadId, nullptr,
                                     Mirror[ValidateCursor].Addr);
      T.abortExplicit(AbortUserValidateFail);
    }
    T.storeCommitVersion(&Rt.GLastRedoTs);
    T.storeCommitVersion(Log.valWordAt(Log.slotFor(TagAbs)),
                         TagTsCommitVersionShift, TagPass);
    T.storeCommitVersion(&LastCommittedTs);
  });
  CurPhase = Phase::Idle;
  if (R.Committed) {
    noteTagWritten(TagAbs, R.CommitVersion);
    return PhaseOutcome::Committed;
  }
  if (R.Code == AbortCode::Explicit) {
    if (R.UserCode == AbortUserSglHeld)
      return PhaseOutcome::SglHeld;
    if (R.UserCode == AbortUserValidateFail)
      return PhaseOutcome::CheckFailed;
  }
  return PhaseOutcome::Aborted;
}

void CraftyThread::finishCommit(bool ViaRedo) {
  if (CRAFTY_UNLIKELY(Check != nullptr))
    Check->setPhase("commit");
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->setPhase(ThreadId, "commit");
  // Flush the program writes and the updated COMMITTED timestamp with no
  // drain; the next transaction's commit fence (or recovery's rollback of
  // the thread's last sequence) covers the rest (Section 4.2).
  flushDataLines(Mirror, Log.valWordAt(Log.slotFor(TagAbs)));
  if (ViaRedo)
    ++Stats.Redo;
  else
    ++Stats.Validate;
  Stats.Writes += DynWrites;
  performDeferredFrees();
}

//===----------------------------------------------------------------------===//
// CraftyThread: chunked mode (Figure 4: SGL fallback and thread-unsafe)
//===----------------------------------------------------------------------===//

void CraftyThread::runChunkedSection(TxnBody Body, bool AcquireSgl) {
  if (CRAFTY_UNLIKELY(Check != nullptr))
    Check->setPhase("chunked");
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->setPhase(ThreadId, "chunked");
  PhaseTimer Timer(Rt.Config.CollectPhaseTimings, Stats.SglNs);
  if (AcquireSgl) {
    acquireSgl();
    chunkedSectionBody(Body);
    releaseSgl();
  } else {
    chunkedSectionBody(Body);
  }
}

void CraftyThread::acquireSgl() {
  ExpBackoff Backoff(Rt.Config.BackoffMinSpins, Rt.Config.BackoffMaxSpins,
                     /*Seed=*/ThreadId + 0x51);
  while (!Rt.Htm.nonTxCas(&Rt.SglWord, 0, 1))
    Backoff.backoff();
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->sglAcquired(ThreadId);
}

void CraftyThread::releaseSgl() {
  if (CRAFTY_UNLIKELY(Race != nullptr))
    Race->sglReleased(ThreadId);
  Rt.Htm.nonTxStore(&Rt.SglWord, 0);
}

void CraftyThread::applyMirrorBatch(const std::vector<MirrorEntry> &Entries,
                                    bool UseNew, bool Reverse) {
  BatchAddrScratch.clear();
  BatchValScratch.clear();
  BatchAddrScratch.reserve(Entries.size());
  BatchValScratch.reserve(Entries.size());
  for (size_t I = 0; I != Entries.size(); ++I) {
    CRAFTY_TX_BOUND(Entries.size()); // Mirror of one chunk/section.
    const MirrorEntry &E = Entries[Reverse ? Entries.size() - 1 - I : I];
    BatchAddrScratch.push_back(E.Addr);
    BatchValScratch.push_back(UseNew ? E.New : E.Old);
  }
  Rt.Htm.nonTxStoreBatch(BatchAddrScratch.data(), BatchValScratch.data(),
                         BatchAddrScratch.size());
}

void CraftyThread::chunkedSectionBody(TxnBody Body) {
  // One timestamp for the whole section: recovery rolls back all or none
  // of its sequences (Section 4.4).
  SectionTs = Rt.Htm.advanceClock();
  SectionStartAbs = sharedHead();
  SectionMirror.clear();
  DynWrites = 0;
  ChunkK = Rt.Config.InitialChunkK;
  for (;;) {
    if (chunkedAttempt(Body))
      break;
    // A chunk aborted. The open chunk's writes were buffered in the
    // hardware transaction and are gone; undo the applied chunks, rewind
    // the log, halve k, and re-execute the body (Figure 4). The rollback
    // stores are flushed and drained before the head rewind: the retry
    // overwrites the aborted attempt's log entries, so the old values
    // must be back in place durably before the entries that could
    // restore them are gone.
    // Batched: one clock bump for the whole rollback instead of one per
    // word; last-submitted store wins, so reverse order leaves each word
    // at its earliest Old value.
    applyMirrorBatch(SectionMirror, /*UseNew=*/false, /*Reverse=*/true);
    flushDataLines(SectionMirror, nullptr);
    Rt.Pool.drain(ThreadId);
    Rt.Htm.nonTxStore(&HeadShared, SectionStartAbs);
    SectionMirror.clear();
    resetAttemptState();
    ChunkK = std::max(1u, ChunkK / 2);
  }
  if (!SectionMirror.empty())
    writeTagDirect(TagCommitted, SectionTs);
  Rt.Htm.nonTxStore(&LastCommittedTs, SectionTs);
  // Make later Redo-phase checks of pre-section Log phases fail: the
  // section's writes committed after them.
  Rt.Htm.nonTxStore(&Rt.GLastRedoTs, Rt.Htm.advanceClock());
  Stats.Writes += DynWrites;
  ++Stats.Sgl;
  performDeferredFrees();
}

bool CraftyThread::chunkedAttempt(TxnBody Body) {
  CurPhase = Phase::SglChunk;
  if (setjmp(Tx.jmpEnv()) != 0) {
    // A chunk hardware transaction aborted somewhere inside Body.
    CurPhase = Phase::Idle;
    return false;
  }
  Body(Ctx);
  if (Tx.inTransaction())
    closeChunk(); // Final partial chunk.
  CurPhase = Phase::Idle;
  return true;
}

void CraftyThread::chunkedStore(uint64_t *Addr, uint64_t Val) {
  ++DynWrites;
  // A section's sequences all carry one timestamp and are rolled back all
  // or none; they must therefore never wrap over their own entries.
  if (sharedHead() - SectionStartAbs + ChunkMirror.size() + 2 >=
      maxSeqEntries())
    fatalError("persistent transaction writes more words than half the "
               "configured undo log can hold; increase LogEntriesPerThread");
  if (ChunkK <= 1) {
    // k = 1 (Figure 4): plain undo logging with no hardware transaction;
    // persist the undo entry and its tag before performing the write.
    maybeMaintainLog(2);
    uint64_t Old = Rt.Htm.nonTxLoad(Addr);
    uint64_t Abs = sharedHead();
    writeEntryDirect(Abs, Addr, Old);
    Rt.Htm.nonTxStore(&HeadShared, Abs + 1);
    writeTagDirect(TagLogged, SectionTs); // Persists entry + tag (drain).
    Rt.Htm.nonTxStore(Addr, Val);
    Rt.Pool.clwb(ThreadId, Addr);
    SectionMirror.push_back(MirrorEntry{Addr, Old, Val});
    return;
  }
  if (!Tx.inTransaction()) {
    // Figure 4: the hardware transaction starts at the first persistent
    // write of the chunk.
    maybeMaintainLog(ChunkK + 2);
    Tx.begin();
    ChunkStartAbs = Tx.load(&HeadShared);
    ChunkMirror.clear();
  }
  // Coalesce repeats within the open chunk only: earlier chunks' entries
  // are already persisted and their writes applied, so a word revisited
  // across chunks needs a fresh entry (whose old value is the prior
  // chunk's result -- exactly what stepwise rollback must restore).
  if (uint32_t *ChunkIdx = Tx.writtenWordTag(Addr)) {
    ChunkMirror[*ChunkIdx].New = Val;
    Tx.store(Addr, Val);
    return;
  }
  uint64_t Old = Tx.load(Addr);
  stageUndoEntry(ChunkStartAbs + ChunkMirror.size(), Addr, Old);
  ChunkMirror.push_back(MirrorEntry{Addr, Old, Val});
  Tx.storeTagged(Addr, Val, (uint32_t)(ChunkMirror.size() - 1));
  if (ChunkMirror.size() >= ChunkK)
    closeChunk();
}

void CraftyThread::closeChunk() {
  // Still inside the chunk's hardware transaction: roll back, tag, commit.
  for (size_t I = ChunkMirror.size(); I-- > 0;) {
    CRAFTY_TX_BOUND(ChunkMirror.size()); // <= ChunkK by construction.
    Tx.store(ChunkMirror[I].Addr, ChunkMirror[I].Old);
  }
  uint64_t TagA = ChunkStartAbs + ChunkMirror.size();
  size_t Slot = Log.slotFor(TagA);
  EncodedEntry E = encodeTagEntry(TagLogged, SectionTs, Log.passFor(TagA));
  Tx.store(Log.addrWordAt(Slot), E.AddrWord);
  Tx.store(Log.valWordAt(Slot), E.ValWord);
  Tx.store(&HeadShared, TagA + 1);
  Tx.commit(); // Aborts longjmp to chunkedAttempt's setjmp.
  noteTagWritten(TagA, SectionTs);
  // Persist the chunk's undo entries before its writes reach memory
  // (flushStagedEntries covers the predecessor boundary slot too).
  flushStagedEntries(ChunkStartAbs, TagA);
  Rt.Pool.drain(ThreadId);
  // Thread-unsafe Redo (Algorithm 2): perform the writes directly, then
  // flush their lines as one batch without drain.
  // Program order; batched so the whole chunk costs one clock bump.
  applyMirrorBatch(ChunkMirror, /*UseNew=*/true, /*Reverse=*/false);
  flushDataLines(ChunkMirror, nullptr);
  for (const MirrorEntry &M : ChunkMirror)
    SectionMirror.push_back(M);
  ChunkMirror.clear();
}

void CraftyThread::writeEntryDirect(uint64_t AbsPos, uint64_t *Addr,
                                    uint64_t Old) {
  size_t Slot = Log.slotFor(AbsPos);
  EncodedEntry E = encodeDataEntry(reinterpret_cast<uint64_t>(Addr), Old,
                                   Log.passFor(AbsPos));
  Rt.Htm.nonTxStore(Log.addrWordAt(Slot), E.AddrWord);
  Rt.Htm.nonTxStore(Log.valWordAt(Slot), E.ValWord);
  if (AbsPos > 0) { // Predecessor boundary; see flushStagedEntries.
    uint64_t *Prev = Log.addrWordAt(Log.slotFor(AbsPos - 1));
    if (lineOf(Prev) != lineOf(Log.addrWordAt(Slot)))
      Rt.Pool.clwb(ThreadId, Prev);
  }
  Rt.Pool.clwb(ThreadId, Log.addrWordAt(Slot));
}

void CraftyThread::writeTagDirect(uint64_t Tag, uint64_t Ts) {
  uint64_t Abs = sharedHead();
  size_t Slot = Log.slotFor(Abs);
  EncodedEntry E = encodeTagEntry(Tag, Ts, Log.passFor(Abs));
  Rt.Htm.nonTxStore(Log.addrWordAt(Slot), E.AddrWord);
  Rt.Htm.nonTxStore(Log.valWordAt(Slot), E.ValWord);
  Rt.Htm.nonTxStore(&HeadShared, Abs + 1);
  Rt.Pool.clwb(ThreadId, Log.addrWordAt(Slot));
  Rt.Pool.drain(ThreadId);
  noteTagWritten(Abs, Ts);
}
