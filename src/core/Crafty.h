//===- core/Crafty.h - Crafty persistent transactions ----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crafty: persistent transactions built on commodity HTM through
/// nondestructive undo logging (Genç, Bond, Xu; PLDI 2020).
///
/// A persistent transaction executes as up to three hardware transactions:
///
///  - The Log phase (Section 4.1) runs the body, recording each written
///    word's old value in the thread's persistent circular undo log, then
///    rolls every write back in reverse order -- building a volatile redo
///    log from the (still visible) new values -- and commits. The
///    committed hardware transaction has published only undo-log entries;
///    program state is untouched. The entries are then flushed with no
///    drain: the next hardware transaction's commit fence is the drain.
///
///  - The Redo phase (Section 4.2) checks gLastRedoTS < the Log phase's
///    LOGGED timestamp -- i.e. no transaction committed writes since the
///    Log phase -- and, if so, applies the redo log, advances gLastRedoTS,
///    and overwrites the merged LOGGED/COMMITTED entry's timestamp.
///
///  - If the Redo check fails, the Validate phase (Section 4.3)
///    re-executes the body, checking each write against the persisted
///    undo entries; a mismatch means a conflicting commit intervened and
///    the whole transaction restarts.
///
/// Repeated aborts fall back to a single global lock and the chunked
/// thread-unsafe flow of Figure 4: hardware transactions of up to k writes
/// (k halving after each abort; k = 1 uses no HTM at all), each chunk
/// persisting its undo entries before its writes reach memory.
///
/// The runtime also implements the Section 5.2 log machinery: wraparound
/// bits, the merged LOGGED/COMMITTED entry, tsLowerBound / MAX_LAG
/// maintenance with forced empty commits of delinquent threads, and
/// on-demand immediate persistence (an extension the paper describes but
/// its prototype omits). Recovery lives in recovery/Recovery.h.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_CORE_CRAFTY_H
#define CRAFTY_CORE_CRAFTY_H

#include "core/CraftyConfig.h"
#include "core/Ptm.h"
#include "htm/Htm.h"
#include "log/PoolLayout.h"
#include "log/RedoLog.h"
#include "pmem/PMemAllocator.h"
#include "pmem/PMemPool.h"
#include "support/Annotations.h"
#include "support/Compiler.h"
#include "support/Spin.h"

#include <memory>
#include <vector>

namespace crafty {

class CraftyRuntime;
class PersistCheck;
class TxRaceCheck;

/// Thread-safety-analysis token for the single global lock (an annotation
/// anchor only; the lock word itself lives in CraftyRuntime::SglWord and
/// is manipulated with nonTxCas/nonTxStore).
class CRAFTY_CAPABILITY("mutex") SglCapability {};

/// Per-thread Crafty execution context. Obtain via
/// CraftyRuntime::thread(); use from one thread at a time.
class CraftyThread {
public:
  CraftyThread(CraftyRuntime &Rt, unsigned ThreadId);
  CraftyThread(const CraftyThread &) = delete;
  CraftyThread &operator=(const CraftyThread &) = delete;

  unsigned threadId() const { return ThreadId; }

  /// Executes \p Body as one persistent transaction; returns when it has
  /// committed. See core/Ptm.h for body requirements.
  void run(TxnBody Body);

  const PtmStats &txnStats() const { return Stats; }
  const HtmStats &htmStats() const { return Tx.stats(); }

private:
  friend class CraftyRuntime;

  enum class LogOutcome { Committed, ReadOnly, Aborted, SglHeld };
  enum class PhaseOutcome { Committed, CheckFailed, Aborted, SglHeld };
  enum class Phase { Idle, Log, Validate, SglChunk };

  /// TxnContext implementation dispatching on the current phase.
  class Context final : public TxnContext {
  public:
    explicit Context(CraftyThread &T) : T(T) {}
    uint64_t load(const uint64_t *Addr) override;
    void store(uint64_t *Addr, uint64_t Val) override;
    void *alloc(size_t Bytes) override;
    void dealloc(void *Ptr) override;

  private:
    CraftyThread &T;
  };

  struct MirrorEntry {
    uint64_t *Addr;
    uint64_t Old;
    uint64_t New;
  };

  // Thread-safe mode phases. tryThreadSafe returns false when the
  // transaction should fall back to the SGL.
  bool tryThreadSafe(TxnBody Body);
  /// The Log phase flushes its undo entries with *no* drain: the Redo or
  /// Validate phase commits inside a hardware transaction whose commit
  /// fence is the drain (the paper's flush-without-drain optimization).
  CRAFTY_TX_BODY CRAFTY_DRAIN_DEFERRED LogOutcome logPhase(TxnBody Body);
  CRAFTY_TX_BODY PhaseOutcome redoPhase();
  CRAFTY_TX_BODY PhaseOutcome validatePhase(TxnBody Body);
  /// Flushes the program writes and COMMITTED timestamp with no drain;
  /// the next transaction's commit fence (or recovery) covers the rest
  /// (Section 4.2).
  CRAFTY_DRAIN_DEFERRED void finishCommit(bool ViaRedo);

  // Chunked flow (SGL fallback and thread-unsafe mode).
  void runChunkedSection(TxnBody Body, bool AcquireSgl);
  void chunkedSectionBody(TxnBody Body);
  void acquireSgl() CRAFTY_ACQUIRE(Rt.SglCap);
  void releaseSgl() CRAFTY_RELEASE(Rt.SglCap);
  bool chunkedAttempt(TxnBody Body);
  /// k = 1 path: the data word's CLWB is deferred to the next tag write's
  /// drain or the next chunk's commit fence.
  CRAFTY_TX_BODY CRAFTY_DRAIN_DEFERRED void chunkedStore(uint64_t *Addr,
                                                         uint64_t Val);
  /// Applies the chunk's writes after its commit and flushes them as one
  /// batch without drain (thread-unsafe Redo, Algorithm 2).
  CRAFTY_TX_BODY CRAFTY_DRAIN_DEFERRED void closeChunk();
  /// Writes and flushes one undo entry; the caller drains (writeTagDirect
  /// or the next commit fence).
  CRAFTY_FLUSH_API void writeEntryDirect(uint64_t AbsPos, uint64_t *Addr,
                                         uint64_t Old);
  CRAFTY_DRAIN_API void writeTagDirect(uint64_t Tag, uint64_t Ts);

  /// Section 5.2 cheap checks, run between hardware transactions before
  /// appending up to \p EntriesNeeded log entries; escalates to
  /// CraftyRuntime::runExpensiveChecks when a bound is (possibly)
  /// violated.
  void maybeMaintainLog(uint64_t EntriesNeeded);
  size_t maxSeqEntries() const { return Log.NumEntries / 2 - 8; }

  // Phase access hooks (called by Context).
  uint64_t ctxLoad(const uint64_t *Addr);
  void ctxStore(uint64_t *Addr, uint64_t Val);
  void *ctxAlloc(size_t Bytes);
  void ctxDealloc(void *Ptr);

  // Undo-log staging helpers.
  void stageUndoEntry(uint64_t AbsPos, uint64_t *Addr, uint64_t Old);
  CRAFTY_FLUSH_API void flushStagedEntries(uint64_t FromAbs, uint64_t ToAbs);
  /// Flushes the data lines of \p Entries (plus \p ExtraWord's line when
  /// non-null) as one line-sorted clwbLines batch; no drain.
  CRAFTY_FLUSH_API void flushDataLines(const std::vector<MirrorEntry> &Entries,
                      void *ExtraWord);
  void noteTagWritten(uint64_t TagAbs, uint64_t Ts);
  uint64_t sharedHead() const;

  // Transaction-local state management.
  void resetAttemptState();
  void performDeferredFrees();
  void waitSglFree();

  /// Applies \p Entries' Old (or New) values as one nonTxStoreBatch --
  /// one clock bump and one stripe pass for the whole mirror instead of
  /// per word. \p Reverse submits the entries last-to-first so a word
  /// written in several chunks ends at its earliest Old value (stepwise
  /// rollback order).
  void applyMirrorBatch(const std::vector<MirrorEntry> &Entries, bool UseNew,
                        bool Reverse);

  CraftyRuntime &Rt;
  unsigned ThreadId;
  /// Non-null when Config.EnablePersistCheck: the runtime's checker, to
  /// which run() reports transaction scopes and phase transitions.
  PersistCheck *Check;
  /// Non-null when Config.EnableTxRaceCheck: the runtime's race checker,
  /// fed the same scope/phase stream plus SGL and Validate-divergence
  /// events (its access stream arrives via the HtmRuntime hooks).
  TxRaceCheck *Race;
  HtmTx Tx;
  /// Separate context for Section 5.2 forced-commit transactions: they
  /// may run while Tx's abort environment is armed across a chunked-mode
  /// body (chunkedAttempt), so they must not reuse Tx's jump buffer.
  HtmTx ForceTx;
  UndoLogRegion Log;

  /// Shared words, accessed transactionally by this thread and by other
  /// threads' forced-commit transactions (Section 5.2).
  alignas(CacheLineBytes) uint64_t HeadShared = 0;
  uint64_t LastCommittedTs = 0;
  /// Log head right after the tag a *completed* persistBarrier forced
  /// into this context (~0 until one completes). Published only after
  /// that barrier's final drain, so when every context's HeadShared still
  /// equals its ForcedUpTo, nothing has committed anywhere since a fully
  /// persisted barrier and its recovery horizon still stands -- the next
  /// barrier can return immediately. The check must span all contexts:
  /// skipping one idle context alone would leave its newest tag with a
  /// stale timestamp, dragging recovery's min-over-threads rollback
  /// threshold below transactions the barrier just persisted.
  std::atomic<uint64_t> ForcedUpTo{~0ull};

  // Current-transaction volatile state.
  Context Ctx{*this};
  Phase CurPhase = Phase::Idle;
  /// Undo/redo mirror in program order: the undo entries' old values and
  /// the redo values in one volatile record. During rollback, the current
  /// memory value at each reverse step always equals that entry's New, so
  /// no transactional re-loads are needed (and the Redo phase applies New
  /// in program order).
  std::vector<MirrorEntry> Mirror;
  /// Dynamic program stores of the current attempt (repeats included):
  /// coalescing shrinks Mirror, but Table 1 counts writes as executed.
  uint64_t DynWrites = 0;
  /// Scratch for batched data-line flushes (flushDataLines): reused so
  /// the commit path never allocates.
  std::vector<const void *> FlushLineScratch;
  /// Scratch for applyMirrorBatch (chunked write-back/rollback).
  std::vector<uint64_t *> BatchAddrScratch;
  std::vector<uint64_t> BatchValScratch;
  /// Bounded exponential backoff with jitter between aborted attempts
  /// (CraftyConfig::BackoffMinSpins/BackoffMaxSpins); reset per
  /// transaction, escalated per abort.
  ExpBackoff RetryBackoff;
  size_t ValidateCursor = 0;
  std::vector<void *> AllocLog;
  size_t AllocCursor = 0;
  std::vector<void *> FreeLog;
  uint64_t HeadAtStart = 0;
  uint64_t TagAbs = 0;
  uint64_t LastTs = 0;
  unsigned TagPass = 0;

  // Chunked-mode state.
  unsigned ChunkK = 0;
  uint64_t SectionTs = 0;
  uint64_t SectionStartAbs = 0;
  std::vector<MirrorEntry> SectionMirror; // Applied chunks, program order.
  std::vector<MirrorEntry> ChunkMirror;   // Open chunk, program order.
  uint64_t ChunkStartAbs = 0;

  // Half-log bookkeeping: timestamp of the first tag written into each
  // log half, keyed by the absolute half index that wrote it.
  uint64_t FirstTsInHalf[2] = {0, 0};
  uint64_t FirstTsHalfIdx[2] = {~0ull, ~0ull};

  PtmStats Stats;
};

/// In-flight state of a two-phase persist barrier (see
/// CraftyRuntime::persistBarrierBegin). Reusable across barriers.
struct PersistBarrierTicket {
  /// Begin took the slow path; End must drain and publish. A quiet
  /// barrier (nothing committed since the last one) leaves this false
  /// and End is free.
  bool Pending = false;
  /// Per-context forced log heads, published as ForcedUpTo by End once
  /// the forced tags have drained (0 = force lost every retry).
  std::vector<uint64_t> ForcedHeads;
};

/// The Crafty runtime: shared state, the thread registry, and the
/// PtmBackend adapter used by the evaluation harness.
class CraftyRuntime final : public PtmBackend {
public:
  /// Formats \p Pool (header, per-thread undo logs, optional allocator
  /// arenas) and creates Config.NumThreads execution contexts. \p Pool
  /// and \p Htm must outlive the runtime; the runtime installs the pool's
  /// memory hooks into \p Htm.
  CraftyRuntime(PMemPool &Pool, HtmRuntime &Htm, CraftyConfig Config);
  ~CraftyRuntime() override;

  /// Attaches to an already-formatted pool after a crash: run recovery
  /// (recovery/Recovery.h) first, then attach instead of constructing.
  /// The pool header's geometry must match \p Config (thread count, log
  /// size); allocator arenas are not re-established on attach (recovered
  /// applications rebuild allocation state from their own persistent
  /// structures). Fatal on mismatch.
  static std::unique_ptr<CraftyRuntime> attach(PMemPool &Pool,
                                               HtmRuntime &Htm,
                                               CraftyConfig Config);

  const CraftyConfig &config() const { return Config; }
  PMemPool &pool() { return Pool; }
  HtmRuntime &htm() { return Htm; }
  PMemAllocator *allocator() { return Alloc.get(); }
  PoolHeader *poolHeader() { return Header; }
  /// The attached persist-ordering checker, or null when
  /// Config.EnablePersistCheck is false.
  PersistCheck *persistCheck() { return Checker.get(); }
  /// The attached race/isolation checker, or null when
  /// Config.EnableTxRaceCheck is false.
  TxRaceCheck *raceCheck() { return RaceChecker.get(); }

  CraftyThread &thread(unsigned ThreadId) { return *Threads[ThreadId]; }

  /// Allocates persistent memory outside any transaction (setup).
  void *carve(size_t Bytes, size_t Align = CacheLineBytes) {
    return Pool.carve(Bytes, Align);
  }

  /// On-demand immediate persistence (Section 5.2 extension): after this
  /// returns, every transaction that committed before the call survives
  /// recovery. Call before externally visible, irrevocable actions.
  CRAFTY_DRAIN_API void persistBarrier(unsigned CallerThreadId);

  /// Two-phase persistBarrier for callers persisting several runtimes
  /// back to back (one KV worker committing a multi-shard cycle): call
  /// persistBarrierBegin on every runtime first, then persistBarrierEnd
  /// on every runtime. Begin writes the pool back and forces the empty
  /// commits but does not wait out the write-back latency; End drains
  /// and publishes the barrier horizon. The fixed drain waits of all the
  /// runtimes then overlap in the End pass instead of serializing --
  /// like issuing every CLWB before a single SFENCE. Begin/End pairs
  /// must not be interleaved with other barriers from the same caller.
  CRAFTY_DRAIN_DEFERRED void persistBarrierBegin(unsigned CallerThreadId,
                                                 PersistBarrierTicket &T);
  CRAFTY_DRAIN_API void persistBarrierEnd(unsigned CallerThreadId,
                                          PersistBarrierTicket &T);

  // PtmBackend interface.
  const char *name() const override;
  unsigned maxThreads() const override { return Config.NumThreads; }
  void run(unsigned ThreadId, TxnBody Body) override {
    Threads[ThreadId]->run(Body);
  }
  PtmStats txnStats() const override;
  HtmStats htmStats() const override;
  HtmStats htmStatsFor(unsigned ThreadId) const override;

private:
  friend class CraftyThread;

  CraftyRuntime(PMemPool &Pool, HtmRuntime &Htm, CraftyConfig Config,
                bool Attach);

  /// Section 5.2 maintenance: brings every thread's last committed
  /// transaction to ts >= \p TargetTs by forcing empty commits into
  /// delinquent threads' logs, then refreshes tsLowerBound. Called when
  /// the MAX_LAG bound or the half-log overwrite bound is violated.
  void runExpensiveChecks(CraftyThread &Forcer, uint64_t TargetTs);

  /// Appends an empty committed transaction to \p Victim's log from
  /// \p Forcer's hardware-transaction context. Returns true on success.
  /// The forced tag's CLWB drains at the forcer's next commit fence.
  CRAFTY_TX_BODY CRAFTY_DRAIN_DEFERRED bool
  forceEmptyCommit(CraftyThread &Forcer, CraftyThread &Victim,
                   uint64_t *ForcedHeadOut = nullptr);

  PMemPool &Pool;
  HtmRuntime &Htm;
  CraftyConfig Config;
  PoolHeader *Header = nullptr;
  std::unique_ptr<PMemAllocator> Alloc;
  std::unique_ptr<PersistCheck> Checker;
  std::unique_ptr<TxRaceCheck> RaceChecker;
  std::vector<std::unique_ptr<CraftyThread>> Threads;

  /// Timestamp of the last committed writes by any thread (Section 4.2).
  alignas(CacheLineBytes) uint64_t GLastRedoTs = 0;
  /// The single global lock (Section 4.4): 0 free, 1 held.
  alignas(CacheLineBytes) uint64_t SglWord = 0;
  /// Annotation anchor for SglWord (see SglCapability).
  SglCapability SglCap;
  /// Lower bound on the earliest timestamp recovery may roll back to.
  alignas(CacheLineBytes) std::atomic<uint64_t> TsLowerBound{0};
};

} // namespace crafty

#endif // CRAFTY_CORE_CRAFTY_H
