//===- htm/Htm.h - Software emulation of commodity HTM ---------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A software emulation of commodity hardware transactional memory (Intel
/// RTM), used as the substrate for every persistent-transaction system in
/// this repository (Crafty and the NV-HTM / DudeTM / Non-durable baselines).
///
/// The reproduction host has no TSX, so we provide the four HTM properties
/// the paper's algorithms rely on with a TL2-style engine:
///
///  1. Committed transactions are atomic and isolated (opacity: per-read
///     version checks plus commit-time read-set validation).
///  2. Transactional writes are buffered and invisible to memory and other
///     threads until commit -- the property nondestructive undo logging
///     exploits to keep rolled-back writes out of persistent memory.
///  3. An abort discards all buffered writes.
///  4. Transactions abort for the same causes commodity HTM aborts:
///     conflicts, read/write-set capacity overflow, explicit XABORT, and
///     spurious ("zero") events, which can be injected for testing.
///
/// Conflict detection is cache-line granular by default (configurable for
/// the granularity ablation). Commit timestamps come from the global
/// version clock and are totally ordered consistently with transaction
/// serialization; they replace the paper's RDTSC-based Lamport timestamps
/// (see DESIGN.md Section 2). A transaction may request that its commit
/// version be stored to chosen words atomically with its write-back
/// (storeCommitVersion), which implements the paper's "getTimestamp()
/// inside the transaction" idiom exactly.
///
/// Commit has drain (SFENCE) semantics like an RTM commit: a registered
/// commit-fence hook runs before the write-back, which the persistent
/// memory simulator uses to complete the committing thread's pending cache
/// line write-backs -- the ordering lever the paper's flush-without-drain
/// optimization depends on.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_HTM_HTM_H
#define CRAFTY_HTM_HTM_H

#include "support/Annotations.h"
#include "support/CacheLine.h"
#include "support/Compiler.h"
#include "support/Rng.h"
#include "support/Spin.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <csetjmp>
#include <cstdint>
#include <memory>
#include <vector>

namespace crafty {

/// Why a hardware transaction aborted; matches the categories the paper's
/// appendix reports (Commit / Conflict / Capacity / Explicit / Zero).
enum class AbortCode : uint8_t {
  None = 0,
  /// Another transaction or a non-transactional store touched an accessed
  /// cache line.
  Conflict,
  /// The transaction accessed more cache lines than the emulated hardware
  /// can track.
  Capacity,
  /// The program requested an abort (XABORT), e.g. a failed Redo/Validate
  /// check or an SGL observed held.
  Explicit,
  /// A spurious event (interrupt, page fault); injected probabilistically.
  Zero,
};

/// Returns a short human-readable name for \p Code.
const char *abortCodeName(AbortCode Code);

/// Configuration of the emulated hardware.
struct HtmConfig {
  /// log2 of the number of versioned-lock stripes.
  unsigned LockTableBits = 20;
  /// Maximum distinct cache lines a transaction may write (Skylake L1 can
  /// hold 512 lines; exceeding this raises a Capacity abort).
  size_t MaxWriteSetLines = 512;
  /// Maximum distinct cache lines a transaction may read.
  size_t MaxReadSetLines = 8192;
  /// Conflict-detection granularity as a byte shift; 6 = 64-byte lines,
  /// 3 = word granularity (used by the granularity ablation).
  unsigned ConflictGranularityShift = CacheLineShift;
  /// Probability of a spurious ("zero") abort per transactional operation,
  /// expressed per million operations. 0 disables injection.
  uint32_t SpuriousAbortPerMillion = 0;
  /// Bounded spin iterations when acquiring a write lock at commit before
  /// declaring a conflict.
  unsigned CommitLockSpinLimit = 64;
};

/// Contention-tuning knobs, mutable after construction (install before
/// transactions run; CraftyRuntime forwards the matching CraftyConfig
/// fields here). Split from HtmConfig so a backend can tune a shared
/// HtmRuntime without re-deriving the lock-table geometry.
struct HtmTuning {
  /// On a read of a stripe newer than the snapshot, try to extend the
  /// snapshot to the current clock by revalidating the read set (TinySTM
  /// timestamp extension) instead of aborting. Turns the common
  /// stale-snapshot abort -- every transaction that resumes after another
  /// thread's commit, i.e. nearly every transaction on an oversubscribed
  /// host -- into an O(reads) revalidation.
  bool SnapshotExtension = true;
  /// Lock commit stripes in sorted address order (deadlock-free ordering;
  /// STO_SORT_WRITESET). When off, stripes are locked in insertion order
  /// and the bounded commit spin breaks deadlocks by aborting.
  bool SortWriteSet = true;
  /// Buffered writes up to this count are kept in a dense array with
  /// linear read-your-write lookup; past the threshold the write set
  /// spills into the hash table. 0 disables the dense path entirely --
  /// and is the default: on the emulated HTM the open-addressed table's
  /// probed lines stay cache-resident across transactions, so the O(1)
  /// probe beats the linear scan at every write-set size measured
  /// (2..40 writes; see DESIGN.md 7.3). The dense mode is kept as an
  /// ablation position and for hosts where the table is genuinely cold.
  size_t WriteSetHashThreshold = 0;
};

/// Per-transaction-context statistics (cumulative across transactions).
struct HtmStats {
  uint64_t Commits = 0;
  uint64_t AbortConflict = 0;
  uint64_t AbortCapacity = 0;
  uint64_t AbortExplicit = 0;
  uint64_t AbortZero = 0;
  /// Read-set entries examined by commit-time validation (one per distinct
  /// stripe read, per validating commit). With the dense occupied-slot
  /// index this grows with reads performed, not with read-set table size.
  uint64_t ValidatedReadSlots = 0;
  /// Distinct words written by committed transactions, total and the
  /// single-transaction maximum -- the dynamic counterpart of crafty-lint's
  /// static tx-capacity bound (both count 8-byte words).
  uint64_t WriteWordsTotal = 0;
  uint64_t MaxWriteWordsPerTxn = 0;
  /// Successful snapshot extensions (HtmTuning::SnapshotExtension): reads
  /// that would have been stale-snapshot Conflict aborts but revalidated
  /// and continued.
  uint64_t SnapshotExtensions = 0;
  /// Global-version-clock advances performed by this context's commits.
  /// Read-only commits never bump (sample-and-validate); together with
  /// HtmRuntime::nonTxClockBumps this gives the clock-bumps-per-commit
  /// ratio the contention work tracks.
  uint64_t ClockBumps = 0;

  uint64_t aborts() const {
    return AbortConflict + AbortCapacity + AbortExplicit + AbortZero;
  }
  uint64_t started() const { return Commits + aborts(); }

  HtmStats &operator+=(const HtmStats &O) {
    Commits += O.Commits;
    AbortConflict += O.AbortConflict;
    AbortCapacity += O.AbortCapacity;
    AbortExplicit += O.AbortExplicit;
    AbortZero += O.AbortZero;
    ValidatedReadSlots += O.ValidatedReadSlots;
    WriteWordsTotal += O.WriteWordsTotal;
    MaxWriteWordsPerTxn = std::max(MaxWriteWordsPerTxn, O.MaxWriteWordsPerTxn);
    SnapshotExtensions += O.SnapshotExtensions;
    ClockBumps += O.ClockBumps;
    return *this;
  }
};

/// Hooks that let the persistent-memory simulator observe committed stores
/// (to track dirty lines) and commit fences (SFENCE semantics of an RTM
/// commit, which complete the thread's pending CLWBs).
struct MemoryHooks {
  void *Ctx = nullptr;
  /// Called (with the runtime-internal stripe still locked) for every word
  /// stored by a committing transaction or a non-transactional store.
  /// \p OldVal is the word's content immediately before the store and
  /// \p NewVal the value stored; observers (persistence checking) use the
  /// pair to tell value-changing stores from no-op ones (e.g. the Log
  /// phase's rollback writes restore exactly the value already in memory).
  void (*OnStore)(void *Ctx, void *Addr, uint64_t OldVal,
                  uint64_t NewVal) = nullptr;
  /// Called once per successful commit, before the transaction's write-back
  /// becomes visible. \p ThreadId identifies the committing context.
  void (*OnCommitFence)(void *Ctx, uint32_t ThreadId) = nullptr;
};

/// Hooks that let a dynamic race/isolation checker (check/TxRaceCheck.h)
/// observe every memory access the runtime mediates: transactional loads
/// and stores, transaction begin/commit/abort with their clock versions,
/// and the strong-isolation non-transactional operations. All hooks are
/// optional; unset entries cost one predicted-not-taken branch per event.
///
/// Ordering guarantees the observer may rely on:
///  - OnTxLoad/OnTxStore fire at access time, while the transaction is
///    still speculative; an observer must treat them as provisional until
///    the matching OnTxCommit (OnTxAbort discards them). A load served
///    from the transaction's own write buffer fires no hook (it touches
///    no shared memory).
///  - OnTxCommit and OnNonTxStore fire *before* the involved stripes are
///    released, so for any two conflicting operations the hook order
///    matches the serialization order.
///  - A successful nonTxCas reports through OnNonTxStore; a failed one
///    through OnNonTxLoad (it observed the word and changed nothing).
struct AccessHooks {
  void *Ctx = nullptr;
  /// A transaction began with the given snapshot version.
  void (*OnTxBegin)(void *Ctx, uint32_t ThreadId, uint64_t Snapshot) = nullptr;
  /// Speculative transactional load of \p Addr from shared memory.
  void (*OnTxLoad)(void *Ctx, uint32_t ThreadId, const void *Addr) = nullptr;
  /// Speculative transactional store to \p Addr (buffered until commit).
  void (*OnTxStore)(void *Ctx, uint32_t ThreadId, void *Addr) = nullptr;
  /// The transaction committed at \p Version (the snapshot version for
  /// read-only commits, which publish nothing: HadWrites is false).
  void (*OnTxCommit)(void *Ctx, uint32_t ThreadId, uint64_t Version,
                     bool HadWrites) = nullptr;
  /// The transaction aborted; its speculative accesses never happened.
  void (*OnTxAbort)(void *Ctx, uint32_t ThreadId) = nullptr;
  /// Strong-isolation non-transactional load of \p Addr.
  void (*OnNonTxLoad)(void *Ctx, const void *Addr) = nullptr;
  /// Strong-isolation non-transactional store; \p Version is the global
  /// clock value the store's stripe was stamped with.
  void (*OnNonTxStore)(void *Ctx, void *Addr, uint64_t Version) = nullptr;
};

class HtmTx;

/// Shared state of the emulated HTM: the global version clock and the
/// striped versioned-lock table.
class HtmRuntime {
public:
  explicit HtmRuntime(HtmConfig Config = HtmConfig());
  HtmRuntime(const HtmRuntime &) = delete;
  HtmRuntime &operator=(const HtmRuntime &) = delete;

  const HtmConfig &config() const { return Config; }

  /// Installs contention-tuning knobs. Not thread-safe: install before
  /// transactions run (transactions read the knobs per access/commit).
  void setTuning(const HtmTuning &T) { Tuning = T; }
  const HtmTuning &tuning() const { return Tuning; }

  /// Installs the persistent-memory observation hooks. Must be called
  /// before any transaction runs.
  void setMemoryHooks(const MemoryHooks &Hooks) { this->Hooks = Hooks; }
  const MemoryHooks &memoryHooks() const { return Hooks; }

  /// Installs (or, with a default-constructed value, removes) the
  /// access-observer hooks. Not thread-safe: install before transactions
  /// run, remove after they quiesce.
  void setAccessHooks(const AccessHooks &Hooks) { AHooks = Hooks; }
  const AccessHooks &accessHooks() const { return AHooks; }

  /// Current value of the global version clock. Commit timestamps are
  /// values of this clock; a later-serialized writing transaction always
  /// has a larger timestamp.
  uint64_t globalClock() const {
    return Clock.load(std::memory_order_acquire);
  }

  /// Advances the global version clock and returns the new value: a fresh
  /// timestamp ordered after every committed transaction and before every
  /// later one. Used by the SGL path, which commits outside hardware
  /// transactions.
  uint64_t advanceClock() {
    NonTxClockBumps.fetch_add(1, std::memory_order_relaxed);
    return Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Clock advances performed outside transactional commits (nonTxStore,
  /// nonTxCas, nonTxStoreBatch, advanceClock) since construction. The
  /// transactional-commit bumps are in each context's HtmStats::ClockBumps.
  uint64_t nonTxClockBumps() const {
    return NonTxClockBumps.load(std::memory_order_relaxed);
  }

  /// Stores \p Val to \p Addr outside any transaction while keeping
  /// concurrent transactions consistent: the word's stripe version is
  /// advanced so conflicting transactional readers abort or fail
  /// validation. This emulates HTM's strong isolation for the SGL path,
  /// recovery, and initialization done while transactions may run.
  CRAFTY_TX_SAFE void nonTxStore(uint64_t *Addr, uint64_t Val);

  /// Atomic compare-and-swap with the same strong-isolation guarantee as
  /// nonTxStore. Returns true if the swap happened.
  CRAFTY_TX_SAFE bool nonTxCas(uint64_t *Addr, uint64_t Expected,
                               uint64_t Desired);

  /// Stores \p Count (Addrs[i], Vals[i]) pairs with nonTxStore's strong
  /// isolation as one batch: every distinct stripe is locked (in sorted
  /// order, deadlock-free against committers), the clock advances *once*,
  /// all words are stored in array order (a repeated address keeps the
  /// last value), and the stripes are stamped with the single version.
  /// One clock bump and one lock pass per batch instead of per word --
  /// the contention fix for the chunked/SGL write-back, which previously
  /// hammered the shared clock line once per persistent word.
  CRAFTY_TX_SAFE void nonTxStoreBatch(uint64_t *const *Addrs,
                                      const uint64_t *Vals, size_t Count);

  /// Non-transactional load with strong-isolation semantics: waits out a
  /// concurrent committer's write-back of the word's stripe and re-checks
  /// the version, so the caller can never observe the middle of a commit.
  /// Real HTM commits are atomic at an instant; the emulation's commit
  /// has a validate/write-back window, and the SGL path reads directly,
  /// so its loads must serialize against in-flight write-backs (a plain
  /// load could read a pre-commit value whose transaction then finishes
  /// write-back, losing the SGL section's update).
  CRAFTY_TX_SAFE uint64_t nonTxLoad(const uint64_t *Addr) {
    std::atomic<uint64_t> &Stripe = stripeFor(Addr);
    uint64_t Val;
    SpinBackoff Backoff;
    for (;;) {
      uint64_t V1 = Stripe.load(std::memory_order_acquire);
      if (V1 & 1) {
        // A committer owns the stripe; wait out its write-back. Back off
        // (pause, then yield) rather than re-load hot: on an oversubscribed
        // host a bare spin burns the waiter's whole quantum while the
        // committer is descheduled.
        Backoff.pause();
        continue;
      }
      Val = __atomic_load_n(Addr, __ATOMIC_ACQUIRE);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (Stripe.load(std::memory_order_acquire) == V1)
        break;
      Backoff.pause();
    }
    if (CRAFTY_UNLIKELY(AHooks.OnNonTxLoad != nullptr))
      AHooks.OnNonTxLoad(AHooks.Ctx, Addr);
    return Val;
  }

  /// Plain atomic load with no consistency guarantee: only for spin-wait
  /// monitoring where a stale value merely retries the loop.
  CRAFTY_TX_SAFE static uint64_t plainLoad(const uint64_t *Addr) {
    return __atomic_load_n(Addr, __ATOMIC_ACQUIRE);
  }

private:
  friend class HtmTx;

  /// A stripe is either a version (LSB 0; version = clock value << 1) or a
  /// lock owned by a committing transaction (LSB 1; owner = ptr | 1).
  std::atomic<uint64_t> &stripeFor(const void *Addr) {
    uintptr_t Key = reinterpret_cast<uintptr_t>(Addr) >>
                    Config.ConflictGranularityShift;
    uint64_t H = (uint64_t)Key * 0x9e3779b97f4a7c15ull;
    return Table[(H >> 32) & TableMask];
  }

  HtmConfig Config;
  HtmTuning Tuning;
  MemoryHooks Hooks;
  AccessHooks AHooks;
  size_t TableMask;
  std::unique_ptr<std::atomic<uint64_t>[]> Table;
  /// The two hottest shared words, each alone on its cache line (the
  /// trailing padding keeps whatever the allocator places next off the
  /// clock's line): every writing commit CASes the clock, and sharing its
  /// line with anything else turns unrelated writes into clock-line
  /// invalidations on every core.
  alignas(CacheLineBytes) std::atomic<uint64_t> Clock{0};
  alignas(CacheLineBytes) std::atomic<uint64_t> NonTxClockBumps{0};
  char ClockPad[CacheLineBytes - sizeof(std::atomic<uint64_t>)];
};

/// Outcome of runHtmTx.
struct TxResult {
  bool Committed = false;
  /// Commit version (the transaction's timestamp) for writing commits;
  /// the snapshot version for read-only commits.
  uint64_t CommitVersion = 0;
  AbortCode Code = AbortCode::None;
  /// User payload of an Explicit abort.
  uint32_t UserCode = 0;
};

/// A per-thread transaction context. Not thread-safe; each thread owns one.
///
/// Usage (or use the runHtmTx helper below):
/// \code
///   if (setjmp(Tx.jmpEnv()) != 0) { /* aborted: Tx.abortCode() */ }
///   else { Tx.begin(); ... Tx.load/store ...; uint64_t V = Tx.commit(); }
/// \endcode
class HtmTx {
public:
  HtmTx(HtmRuntime &Runtime, uint32_t ThreadId, uint64_t RngSeed = 1);
  ~HtmTx();
  HtmTx(const HtmTx &) = delete;
  HtmTx &operator=(const HtmTx &) = delete;

  HtmRuntime &runtime() { return Runtime; }
  uint32_t threadId() const { return ThreadId; }

  /// The jump environment an abort unwinds to. Callers must setjmp on it
  /// immediately before begin(). Aborts longjmp with value 1.
  jmp_buf &jmpEnv() { return Env; }

  /// Starts a transaction: captures the snapshot version and resets the
  /// read/write sets.
  CRAFTY_TX_SAFE void begin();

  /// True between begin() and commit()/abort.
  bool inTransaction() const { return Active; }

  /// Transactional load of an 8-byte word. Returns the transaction's own
  /// buffered value if the word was written. Aborts (longjmp) on conflict,
  /// capacity overflow, or injected spurious events.
  CRAFTY_TX_SAFE uint64_t load(const uint64_t *Addr);

  /// Transactional store of an 8-byte word; buffered until commit.
  CRAFTY_TX_SAFE CRAFTY_TX_STORE_API void store(uint64_t *Addr, uint64_t Val);

  /// Like store(), additionally associating the caller tag \p Tag with the
  /// buffered word. The tag is retrievable through writtenWordTag() until
  /// commit or abort; a later untagged store() to the word preserves it.
  /// Undo-log coalescing uses this to map a written word back to its undo
  /// entry without a second hash table.
  CRAFTY_TX_SAFE CRAFTY_TX_STORE_API void storeTagged(uint64_t *Addr,
                                                      uint64_t Val,
                                                      uint32_t Tag);

  /// If the current transaction has a buffered write of \p Addr (via
  /// store, storeTagged, or storeCommitVersion), returns a pointer to the
  /// word's caller tag; otherwise null. The pointer is valid until the
  /// next store into the buffer. storeStream words are never found (they
  /// are not read-your-write).
  CRAFTY_TX_SAFE uint32_t *writtenWordTag(uint64_t *Addr) {
    uint64_t Hash = addrHash(Addr);
    if (CRAFTY_LIKELY((WriteFilter & filterBit(Hash)) == 0))
      return nullptr;
    WriteSlot *Slot = findWriteSlot(Addr, Hash, /*Insert=*/false);
    return Slot ? &Slot->UserTag : nullptr;
  }

  /// Streaming transactional store for write-once words that the
  /// transaction never loads back (undo-log staging): buffered in an
  /// append-only list with no read-your-write support, which keeps the
  /// emulation's cost for these plain-on-real-HTM stores low. Conflict
  /// detection, capacity accounting, atomicity and abort semantics are
  /// identical to store(). Storing the same word again within the
  /// transaction (via either API) is unsupported.
  CRAFTY_TX_SAFE CRAFTY_TX_STORE_API void storeStream(uint64_t *Addr,
                                                      uint64_t Val);

  /// Like store, except the value written at commit is derived from the
  /// transaction's commit version V as (V << Shift) | OrMask. Reading the
  /// word back inside the same transaction returns 0 (the version is
  /// unknown until commit). This implements the paper's "write
  /// getTimestamp() inside the hardware transaction" uses (LOGGED /
  /// COMMITTED timestamps and gLastRedoTS) with timestamps that are
  /// exactly serialization-consistent; Shift/OrMask support the undo log's
  /// stolen-bit timestamp encoding.
  CRAFTY_TX_SAFE CRAFTY_TX_STORE_API void
  storeCommitVersion(uint64_t *Addr, unsigned Shift = 0, uint64_t OrMask = 0);

  /// Explicit abort (XABORT) carrying \p UserCode; does not return.
  CRAFTY_TX_SAFE [[noreturn]] void abortExplicit(uint32_t UserCode);

  /// Attempts to commit. On success returns the commit version (writing
  /// transactions) or the snapshot version (read-only transactions). On
  /// validation/lock failure, aborts via longjmp. Commit has SFENCE
  /// semantics (the registered commit-fence hook completes this thread's
  /// pending CLWBs), so it counts as a drain point.
  CRAFTY_TX_SAFE CRAFTY_DRAIN_API uint64_t commit();

  /// Abort cause of the most recent abort.
  AbortCode abortCode() const { return LastAbort; }
  uint32_t abortUserCode() const { return LastUserCode; }

  /// Cumulative statistics for this context.
  const HtmStats &stats() const { return Stats; }
  void resetStats() { Stats = HtmStats(); }

  /// Number of distinct words written by the current transaction.
  size_t writeSetWords() const {
    return (DenseMode ? DenseWrites.size() : WriteOrder.size()) +
           StreamWrites.size();
  }

private:
  struct WriteSlot {
    uint64_t *Addr = nullptr;
    uint64_t Val = 0;
    uint64_t Epoch = 0;
    uint64_t OrMask = 0;
    uint32_t UserTag = 0;
    uint8_t Shift = 0;
    bool IsCommitVersion = false;
  };
  struct ReadSlot {
    std::atomic<uint64_t> *Stripe = nullptr;
    uint64_t Version = 0;
    uint64_t Epoch = 0;
  };
  struct LineSlot {
    uintptr_t Line = 0;
    uint64_t Epoch = 0;
  };

  /// Fibonacci hash shared by the write buffer and the write filter.
  static uint64_t addrHash(const void *Addr) {
    return (uint64_t)reinterpret_cast<uintptr_t>(Addr) *
           0x9e3779b97f4a7c15ull;
  }
  /// The write-filter bit for a hashed address (top 6 hash bits).
  static uint64_t filterBit(uint64_t Hash) { return 1ull << (Hash >> 58); }

  [[noreturn]] void abortTx(AbortCode Code, uint32_t UserCode = 0);
  void maybeInjectSpuriousAbort();
  WriteSlot *findWriteSlot(uint64_t *Addr, uint64_t Hash, bool Insert);
  WriteSlot *findWriteSlotHash(uint64_t *Addr, uint64_t Hash, bool Insert);
  /// Cold: migrates the dense write set into the hash table (the write
  /// set crossed HtmTuning::WriteSetHashThreshold) and inserts \p Addr.
  WriteSlot *spillDenseWrites(uint64_t *Addr, uint64_t Hash);
  void noteWrittenLine(const void *Addr);
  void recordRead(std::atomic<uint64_t> *Stripe, uint64_t Version);
  bool validateReadSet(uint64_t OwnedTag);
  /// Pre-lock version of a stripe this commit owns (sorted or linear
  /// lookup depending on HtmTuning::SortWriteSet).
  uint64_t preLockVersionOf(std::atomic<uint64_t> *Stripe);
  /// Cold path of load(): the stripe is locked or newer than the
  /// snapshot. Attempts timestamp extension; returns a consistent stripe
  /// version to proceed with or aborts.
  CRAFTY_TX_SAFE uint64_t loadStripeSlow(std::atomic<uint64_t> &Stripe);
  /// Re-samples the clock and revalidates the read set against the
  /// recorded per-stripe versions; on success the snapshot advances to
  /// the sample (TL2/TinySTM timestamp extension).
  CRAFTY_TX_SAFE bool tryExtendSnapshot();

  HtmRuntime &Runtime;
  uint32_t ThreadId;
  bool Active = false;
  uint64_t SnapshotVersion = 0;
  uint64_t Epoch = 0;
  AbortCode LastAbort = AbortCode::None;
  uint32_t LastUserCode = 0;
  HtmStats Stats;
  Rng SpuriousRng;

  // Write buffer: open-addressed, epoch-validated; WriteOrder preserves
  // insertion order for the write-back.
  std::vector<WriteSlot> WriteBuf;
  std::vector<uint32_t> WriteOrder;
  size_t WriteBufMask;
  // Dense small-write-set mode (HtmTuning::WriteSetHashThreshold, off by
  // default -- see the threshold's comment): the first DenseLimit
  // distinct writes live here in insertion order and are found by linear
  // scan instead of a probe into the capacity-sized WriteBuf. Crossing
  // the limit spills into WriteBuf/WriteOrder (DenseMode flips off) for
  // the rest of the transaction.
  std::vector<WriteSlot> DenseWrites;
  // Parallel address array for the dense scan: 8 bytes per entry keeps
  // the whole threshold's worth of keys in one or two cache lines, where
  // scanning the 48-byte slots directly would touch one line per entry.
  std::vector<uint64_t *> DenseAddrs;
  size_t DenseLimit = 0;
  bool DenseMode = false;
  // 64-bit summary of buffered-write addresses (bit filterBit(addrHash)).
  // Zero means no buffered writes; a clear bit proves the address was not
  // written by store/storeCommitVersion, so load skips the write-buffer
  // probe. No false negatives: every buffered write sets its bit.
  // storeStream words are deliberately absent -- reading them back is
  // unsupported, so loads need not find them.
  uint64_t WriteFilter = 0;
  // Append-only streaming writes (storeStream), written back after the
  // buffered writes.
  std::vector<std::pair<uint64_t *, uint64_t>> StreamWrites;
  // One-entry cache for written-line capacity accounting.
  uintptr_t LastWrittenLine = ~(uintptr_t)0;
  // Distinct written lines (capacity accounting).
  std::vector<LineSlot> WriteLines;
  size_t WriteLinesMask;
  size_t WriteLineCount = 0;
  // Read set: open-addressed over stripe pointers. ReadOrder is the dense
  // index of occupied slots, so commit-time validation is O(reads
  // performed) instead of a scan of the whole table.
  std::vector<ReadSlot> ReadSet;
  size_t ReadSetMask;
  std::vector<uint32_t> ReadOrder;
  // Commit-time scratch: locked stripes and their pre-lock versions.
  std::vector<std::atomic<uint64_t> *> LockedStripes;
  std::vector<uint64_t> PreLockVersions;

  jmp_buf Env;
};

//===----------------------------------------------------------------------===//
// HtmTx per-access fast paths
//
// Every transactional system in the tree funnels each load and store
// through these, so they are defined inline. The cold control paths
// (begin, commit, abort) live in Htm.cpp.
//===----------------------------------------------------------------------===//

inline void HtmTx::maybeInjectSpuriousAbort() {
  uint32_t P = Runtime.config().SpuriousAbortPerMillion;
  if (CRAFTY_LIKELY(P == 0))
    return;
  if (SpuriousRng.chance(P, 1000000))
    abortTx(AbortCode::Zero);
}

inline HtmTx::WriteSlot *HtmTx::findWriteSlotHash(uint64_t *Addr,
                                                  uint64_t Hash, bool Insert) {
  size_t Idx = (Hash >> 32) & WriteBufMask;
  for (;;) {
    WriteSlot &Slot = WriteBuf[Idx];
    if (Slot.Epoch == Epoch) {
      if (Slot.Addr == Addr)
        return &Slot;
      Idx = (Idx + 1) & WriteBufMask;
      continue;
    }
    if (!Insert)
      return nullptr;
    // Empty slot: claim it. The buffer is sized 2x the word capacity and
    // the capacity check below keeps the load factor bounded.
    if (writeSetWords() >=
        Runtime.config().MaxWriteSetLines * (CacheLineBytes / 8))
      abortTx(AbortCode::Capacity);
    Slot.Addr = Addr;
    Slot.Epoch = Epoch;
    Slot.Val = 0;
    Slot.UserTag = ~0u;
    Slot.IsCommitVersion = false;
    WriteOrder.push_back((uint32_t)Idx);
    return &Slot;
  }
}

inline HtmTx::WriteSlot *HtmTx::findWriteSlot(uint64_t *Addr, uint64_t Hash,
                                              bool Insert) {
  if (CRAFTY_UNLIKELY(DenseMode)) {
    for (size_t I = 0, N = DenseAddrs.size(); I != N; ++I)
      if (DenseAddrs[I] == Addr)
        return &DenseWrites[I];
    if (!Insert)
      return nullptr;
    if (CRAFTY_UNLIKELY(DenseAddrs.size() >= DenseLimit))
      return spillDenseWrites(Addr, Hash);
    if (writeSetWords() >=
        Runtime.config().MaxWriteSetLines * (CacheLineBytes / 8))
      abortTx(AbortCode::Capacity);
    DenseAddrs.push_back(Addr);
    DenseWrites.emplace_back();
    WriteSlot &Slot = DenseWrites.back();
    Slot.Addr = Addr;
    Slot.Epoch = Epoch;
    Slot.UserTag = ~0u;
    return &Slot;
  }
  return findWriteSlotHash(Addr, Hash, Insert);
}

inline void HtmTx::noteWrittenLine(const void *Addr) {
  uintptr_t Line = lineOf(Addr);
  if (Line == LastWrittenLine)
    return;
  LastWrittenLine = Line;
  uint64_t H = (uint64_t)Line * 0x9e3779b97f4a7c15ull;
  size_t Idx = (H >> 32) & WriteLinesMask;
  for (;;) {
    LineSlot &Slot = WriteLines[Idx];
    if (Slot.Epoch == Epoch) {
      if (Slot.Line == Line)
        return;
      Idx = (Idx + 1) & WriteLinesMask;
      continue;
    }
    if (WriteLineCount >= Runtime.config().MaxWriteSetLines)
      abortTx(AbortCode::Capacity);
    Slot.Line = Line;
    Slot.Epoch = Epoch;
    ++WriteLineCount;
    return;
  }
}

inline void HtmTx::recordRead(std::atomic<uint64_t> *Stripe,
                              uint64_t Version) {
  uint64_t H = addrHash(Stripe);
  size_t Idx = (H >> 32) & ReadSetMask;
  for (;;) {
    ReadSlot &Slot = ReadSet[Idx];
    if (Slot.Epoch == Epoch) {
      if (Slot.Stripe == Stripe)
        return; // Re-read of a known stripe; the first version suffices.
      Idx = (Idx + 1) & ReadSetMask;
      continue;
    }
    if (ReadOrder.size() >= Runtime.config().MaxReadSetLines)
      abortTx(AbortCode::Capacity);
    Slot.Stripe = Stripe;
    Slot.Version = Version;
    Slot.Epoch = Epoch;
    ReadOrder.push_back((uint32_t)Idx);
    return;
  }
}

inline uint64_t HtmTx::load(const uint64_t *Addr) {
  assert(Active && "transactional load outside a transaction");
  maybeInjectSpuriousAbort();
  uint64_t Hash = addrHash(Addr);
  if (CRAFTY_UNLIKELY((WriteFilter & filterBit(Hash)) != 0)) {
    if (WriteSlot *Slot =
            findWriteSlot(const_cast<uint64_t *>(Addr), Hash, false)) {
      // A commit-version slot's value is unknown until commit; the paper's
      // algorithms never read those words back within the same transaction.
      return Slot->IsCommitVersion ? 0 : Slot->Val;
    }
  }
  std::atomic<uint64_t> &Stripe = Runtime.stripeFor(Addr);
  uint64_t V1 = Stripe.load(std::memory_order_acquire);
  if (CRAFTY_UNLIKELY((V1 & 1) || (V1 >> 1) > SnapshotVersion))
    V1 = loadStripeSlow(Stripe); // Timestamp extension, or abort.
  uint64_t Val = __atomic_load_n(Addr, __ATOMIC_ACQUIRE);
  std::atomic_thread_fence(std::memory_order_acquire);
  uint64_t V2 = Stripe.load(std::memory_order_acquire);
  if (CRAFTY_UNLIKELY(V1 != V2))
    abortTx(AbortCode::Conflict);
  recordRead(&Stripe, V1);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxLoad != nullptr))
    AHooks.OnTxLoad(AHooks.Ctx, ThreadId, Addr);
  return Val;
}

inline void HtmTx::store(uint64_t *Addr, uint64_t Val) {
  assert(Active && "transactional store outside a transaction");
  maybeInjectSpuriousAbort();
  uint64_t Hash = addrHash(Addr);
  WriteFilter |= filterBit(Hash);
  WriteSlot *Slot = findWriteSlot(Addr, Hash, true);
  Slot->Val = Val;
  Slot->IsCommitVersion = false;
  noteWrittenLine(Addr);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxStore != nullptr))
    AHooks.OnTxStore(AHooks.Ctx, ThreadId, Addr);
}

inline void HtmTx::storeTagged(uint64_t *Addr, uint64_t Val, uint32_t Tag) {
  assert(Active && "transactional store outside a transaction");
  maybeInjectSpuriousAbort();
  uint64_t Hash = addrHash(Addr);
  WriteFilter |= filterBit(Hash);
  WriteSlot *Slot = findWriteSlot(Addr, Hash, true);
  Slot->Val = Val;
  Slot->IsCommitVersion = false;
  Slot->UserTag = Tag;
  noteWrittenLine(Addr);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxStore != nullptr))
    AHooks.OnTxStore(AHooks.Ctx, ThreadId, Addr);
}

inline void HtmTx::storeStream(uint64_t *Addr, uint64_t Val) {
  assert(Active && "transactional store outside a transaction");
  if (writeSetWords() >=
      Runtime.config().MaxWriteSetLines * (CacheLineBytes / 8))
    abortTx(AbortCode::Capacity);
  StreamWrites.emplace_back(Addr, Val);
  noteWrittenLine(Addr);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxStore != nullptr))
    AHooks.OnTxStore(AHooks.Ctx, ThreadId, Addr);
}

inline void HtmTx::storeCommitVersion(uint64_t *Addr, unsigned Shift,
                                      uint64_t OrMask) {
  assert(Active && "transactional store outside a transaction");
  uint64_t Hash = addrHash(Addr);
  WriteFilter |= filterBit(Hash);
  WriteSlot *Slot = findWriteSlot(Addr, Hash, true);
  Slot->IsCommitVersion = true;
  Slot->Shift = (uint8_t)Shift;
  Slot->OrMask = OrMask;
  noteWrittenLine(Addr);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxStore != nullptr))
    AHooks.OnTxStore(AHooks.Ctx, ThreadId, Addr);
}

/// Runs \p Body in a hardware transaction on \p Tx, converting the
/// longjmp-based abort path into a TxResult. \p Body receives the HtmTx.
///
/// \warning An abort unwinds via longjmp: \p Body must not rely on
/// destructors of local objects created inside the transaction.
template <typename Fn> TxResult runHtmTx(HtmTx &Tx, Fn &&Body) {
  if (setjmp(Tx.jmpEnv()) != 0)
    return TxResult{false, 0, Tx.abortCode(), Tx.abortUserCode()};
  Tx.begin();
  Body(Tx);
  uint64_t Version = Tx.commit();
  return TxResult{true, Version, AbortCode::None, 0};
}

} // namespace crafty

#endif // CRAFTY_HTM_HTM_H
