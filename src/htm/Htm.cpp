//===- htm/Htm.cpp - Software emulation of commodity HTM ------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "htm/Htm.h"

#include "support/Spin.h"

#include <algorithm>

using namespace crafty;

const char *crafty::abortCodeName(AbortCode Code) {
  switch (Code) {
  case AbortCode::None:
    return "none";
  case AbortCode::Conflict:
    return "conflict";
  case AbortCode::Capacity:
    return "capacity";
  case AbortCode::Explicit:
    return "explicit";
  case AbortCode::Zero:
    return "zero";
  }
  CRAFTY_UNREACHABLE("bad abort code");
}

static size_t nextPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

//===----------------------------------------------------------------------===//
// HtmRuntime
//===----------------------------------------------------------------------===//

HtmRuntime::HtmRuntime(HtmConfig Config) : Config(Config) {
  size_t Entries = (size_t)1 << Config.LockTableBits;
  TableMask = Entries - 1;
  Table = std::make_unique<std::atomic<uint64_t>[]>(Entries);
  for (size_t I = 0; I != Entries; ++I)
    Table[I].store(0, std::memory_order_relaxed);
}

void HtmRuntime::nonTxStore(uint64_t *Addr, uint64_t Val) {
  std::atomic<uint64_t> &Stripe = stripeFor(Addr);
  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  SpinBackoff Backoff;
  for (;;) {
    uint64_t Cur = Stripe.load(std::memory_order_acquire);
    if ((Cur & 1) == 0 &&
        Stripe.compare_exchange_weak(Cur, OwnedTag,
                                     std::memory_order_acq_rel))
      break;
    Backoff.pause();
  }
  uint64_t Version = Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t Old = __atomic_load_n(Addr, __ATOMIC_RELAXED);
  __atomic_store_n(Addr, Val, __ATOMIC_RELEASE);
  if (Hooks.OnStore)
    Hooks.OnStore(Hooks.Ctx, Addr, Old, Val);
  if (CRAFTY_UNLIKELY(AHooks.OnNonTxStore != nullptr))
    AHooks.OnNonTxStore(AHooks.Ctx, Addr, Version);
  Stripe.store(Version << 1, std::memory_order_release);
}

bool HtmRuntime::nonTxCas(uint64_t *Addr, uint64_t Expected,
                          uint64_t Desired) {
  std::atomic<uint64_t> &Stripe = stripeFor(Addr);
  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  SpinBackoff Backoff;
  uint64_t PreLock;
  for (;;) {
    uint64_t Cur = Stripe.load(std::memory_order_acquire);
    if ((Cur & 1) == 0) {
      PreLock = Cur;
      if (Stripe.compare_exchange_weak(Cur, OwnedTag,
                                       std::memory_order_acq_rel))
        break;
    }
    Backoff.pause();
  }
  uint64_t Cur = __atomic_load_n(Addr, __ATOMIC_ACQUIRE);
  if (Cur != Expected) {
    Stripe.store(PreLock, std::memory_order_release);
    if (CRAFTY_UNLIKELY(AHooks.OnNonTxLoad != nullptr))
      AHooks.OnNonTxLoad(AHooks.Ctx, Addr);
    return false;
  }
  uint64_t Version = Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  __atomic_store_n(Addr, Desired, __ATOMIC_RELEASE);
  if (Hooks.OnStore)
    Hooks.OnStore(Hooks.Ctx, Addr, Cur, Desired);
  if (CRAFTY_UNLIKELY(AHooks.OnNonTxStore != nullptr))
    AHooks.OnNonTxStore(AHooks.Ctx, Addr, Version);
  Stripe.store(Version << 1, std::memory_order_release);
  return true;
}

//===----------------------------------------------------------------------===//
// HtmTx
//===----------------------------------------------------------------------===//

HtmTx::HtmTx(HtmRuntime &Runtime, uint32_t ThreadId, uint64_t RngSeed)
    : Runtime(Runtime), ThreadId(ThreadId),
      SpuriousRng(RngSeed * 0x9e3779b97f4a7c15ull + ThreadId + 1) {
  const HtmConfig &C = Runtime.config();
  size_t MaxWords = C.MaxWriteSetLines * (CacheLineBytes / 8);
  size_t BufSize = std::max<size_t>(64, nextPow2(MaxWords * 2));
  WriteBuf.resize(BufSize);
  WriteBufMask = BufSize - 1;
  WriteOrder.reserve(MaxWords + 1);
  StreamWrites.reserve(MaxWords + 1);
  size_t LineSlots = std::max<size_t>(64, nextPow2(C.MaxWriteSetLines * 2));
  WriteLines.resize(LineSlots);
  WriteLinesMask = LineSlots - 1;
  size_t ReadSlots = std::max<size_t>(64, nextPow2(C.MaxReadSetLines * 2));
  ReadSet.resize(ReadSlots);
  ReadSetMask = ReadSlots - 1;
  ReadOrder.reserve(C.MaxReadSetLines);
  LockedStripes.reserve(MaxWords);
  PreLockVersions.reserve(MaxWords);
}

HtmTx::~HtmTx() = default;

void HtmTx::begin() {
  assert(!Active && "nested hardware transactions are not supported");
  ++Epoch;
  Active = true;
  SnapshotVersion = Runtime.Clock.load(std::memory_order_acquire);
  WriteOrder.clear();
  WriteFilter = 0;
  StreamWrites.clear();
  LastWrittenLine = ~(uintptr_t)0;
  WriteLineCount = 0;
  ReadOrder.clear();
  LockedStripes.clear();
  PreLockVersions.clear();
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxBegin != nullptr))
    AHooks.OnTxBegin(AHooks.Ctx, ThreadId, SnapshotVersion);
}

void HtmTx::abortExplicit(uint32_t UserCode) {
  abortTx(AbortCode::Explicit, UserCode);
}

void HtmTx::abortTx(AbortCode Code, uint32_t UserCode) {
  assert(Active && "abort outside a transaction");
  // Release any commit-time locks, restoring pre-lock versions (no
  // write-back has happened).
  for (size_t I = 0, E = LockedStripes.size(); I != E; ++I)
    LockedStripes[I]->store(PreLockVersions[I], std::memory_order_release);
  LockedStripes.clear();
  PreLockVersions.clear();
  Active = false;
  LastAbort = Code;
  LastUserCode = UserCode;
  switch (Code) {
  case AbortCode::Conflict:
    ++Stats.AbortConflict;
    break;
  case AbortCode::Capacity:
    ++Stats.AbortCapacity;
    break;
  case AbortCode::Explicit:
    ++Stats.AbortExplicit;
    break;
  case AbortCode::Zero:
    ++Stats.AbortZero;
    break;
  case AbortCode::None:
    CRAFTY_UNREACHABLE("abort with no cause");
  }
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxAbort != nullptr))
    AHooks.OnTxAbort(AHooks.Ctx, ThreadId);
  longjmp(Env, 1);
}

bool HtmTx::validateReadSet(uint64_t OwnedTag) {
  // Walk only the occupied slots (dense index), not the whole table: the
  // table is sized for the capacity limit (16K slots by default), while a
  // typical transaction reads a handful of stripes.
  Stats.ValidatedReadSlots += ReadOrder.size();
  for (uint32_t Idx : ReadOrder) {
    ReadSlot &Slot = ReadSet[Idx];
    uint64_t Cur = Slot.Stripe->load(std::memory_order_acquire);
    if (Cur == OwnedTag) {
      // We hold this stripe's lock; judge by its pre-lock version.
      auto It = std::lower_bound(LockedStripes.begin(), LockedStripes.end(),
                                 Slot.Stripe);
      assert(It != LockedStripes.end() && *It == Slot.Stripe &&
             "owned tag without a lock record");
      Cur = PreLockVersions[It - LockedStripes.begin()];
    }
    if (Cur & 1)
      return false; // Locked by a concurrent committer.
    if ((Cur >> 1) > SnapshotVersion)
      return false; // Overwritten since our snapshot.
  }
  return true;
}

uint64_t HtmTx::commit() {
  assert(Active && "commit outside a transaction");
  maybeInjectSpuriousAbort();
  const MemoryHooks &Hooks = Runtime.memoryHooks();
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (WriteOrder.empty() && StreamWrites.empty()) {
    // Read-only: reads were validated at access time against the snapshot.
    Active = false;
    ++Stats.Commits;
    if (Hooks.OnCommitFence)
      Hooks.OnCommitFence(Hooks.Ctx, ThreadId);
    if (CRAFTY_UNLIKELY(AHooks.OnTxCommit != nullptr))
      AHooks.OnTxCommit(AHooks.Ctx, ThreadId, SnapshotVersion,
                        /*HadWrites=*/false);
    return SnapshotVersion;
  }

  // Gather and lock the distinct write stripes in address order (avoids
  // deadlock between committers). Consecutive writes usually land on the
  // same stripe (adjacent words of an undo-log entry, fields of one
  // object), so drop consecutive duplicates before the sort.
  std::atomic<uint64_t> *PrevStripe = nullptr;
  for (uint32_t Idx : WriteOrder) {
    std::atomic<uint64_t> *Stripe = &Runtime.stripeFor(WriteBuf[Idx].Addr);
    if (Stripe != PrevStripe)
      LockedStripes.push_back(Stripe);
    PrevStripe = Stripe;
  }
  for (const auto &[Addr, Val] : StreamWrites) {
    std::atomic<uint64_t> *Stripe = &Runtime.stripeFor(Addr);
    if (Stripe != PrevStripe)
      LockedStripes.push_back(Stripe);
    PrevStripe = Stripe;
  }
  std::sort(LockedStripes.begin(), LockedStripes.end());
  LockedStripes.erase(
      std::unique(LockedStripes.begin(), LockedStripes.end()),
      LockedStripes.end());

  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  size_t NumLocked = 0;
  for (std::atomic<uint64_t> *Stripe : LockedStripes) {
    unsigned Spins = 0;
    for (;;) {
      uint64_t Cur = Stripe->load(std::memory_order_acquire);
      if ((Cur & 1) == 0) {
        if (Stripe->compare_exchange_weak(Cur, OwnedTag,
                                          std::memory_order_acq_rel)) {
          PreLockVersions.push_back(Cur);
          break;
        }
        continue;
      }
      if (++Spins > Runtime.config().CommitLockSpinLimit) {
        LockedStripes.resize(NumLocked);
        abortTx(AbortCode::Conflict);
      }
      std::this_thread::yield();
    }
    ++NumLocked;
  }

  uint64_t CommitVersion =
      Runtime.Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (CommitVersion != SnapshotVersion + 1 && !validateReadSet(OwnedTag))
    abortTx(AbortCode::Conflict);

  // SFENCE semantics of an RTM commit: the committing thread's pending
  // cache-line write-backs complete before its stores become visible.
  if (Hooks.OnCommitFence)
    Hooks.OnCommitFence(Hooks.Ctx, ThreadId);

  for (uint32_t Idx : WriteOrder) {
    WriteSlot &Slot = WriteBuf[Idx];
    uint64_t Val = Slot.IsCommitVersion
                       ? (CommitVersion << Slot.Shift) | Slot.OrMask
                       : Slot.Val;
    uint64_t Old = __atomic_load_n(Slot.Addr, __ATOMIC_RELAXED);
    __atomic_store_n(Slot.Addr, Val, __ATOMIC_RELEASE);
    if (Hooks.OnStore)
      Hooks.OnStore(Hooks.Ctx, Slot.Addr, Old, Val);
  }
  for (const auto &[Addr, Val] : StreamWrites) {
    uint64_t Old = __atomic_load_n(Addr, __ATOMIC_RELAXED);
    __atomic_store_n(Addr, Val, __ATOMIC_RELEASE);
    if (Hooks.OnStore)
      Hooks.OnStore(Hooks.Ctx, Addr, Old, Val);
  }

  // Observer notification precedes the stripe release: any conflicting
  // access serializes after this commit only once the stripes are free, so
  // the observer sees hook events in serialization order (AccessHooks).
  if (CRAFTY_UNLIKELY(AHooks.OnTxCommit != nullptr))
    AHooks.OnTxCommit(AHooks.Ctx, ThreadId, CommitVersion,
                      /*HadWrites=*/true);

  uint64_t NewStripeVersion = CommitVersion << 1;
  for (std::atomic<uint64_t> *Stripe : LockedStripes)
    Stripe->store(NewStripeVersion, std::memory_order_release);
  LockedStripes.clear();
  PreLockVersions.clear();
  Active = false;
  ++Stats.Commits;
  uint64_t Words = writeSetWords();
  Stats.WriteWordsTotal += Words;
  Stats.MaxWriteWordsPerTxn = std::max(Stats.MaxWriteWordsPerTxn, Words);
  return CommitVersion;
}
