//===- htm/Htm.cpp - Software emulation of commodity HTM ------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "htm/Htm.h"

#include "support/Spin.h"

#include <algorithm>

using namespace crafty;

const char *crafty::abortCodeName(AbortCode Code) {
  switch (Code) {
  case AbortCode::None:
    return "none";
  case AbortCode::Conflict:
    return "conflict";
  case AbortCode::Capacity:
    return "capacity";
  case AbortCode::Explicit:
    return "explicit";
  case AbortCode::Zero:
    return "zero";
  }
  CRAFTY_UNREACHABLE("bad abort code");
}

static size_t nextPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

//===----------------------------------------------------------------------===//
// HtmRuntime
//===----------------------------------------------------------------------===//

HtmRuntime::HtmRuntime(HtmConfig Config) : Config(Config) {
  size_t Entries = (size_t)1 << Config.LockTableBits;
  TableMask = Entries - 1;
  Table = std::make_unique<std::atomic<uint64_t>[]>(Entries);
  for (size_t I = 0; I != Entries; ++I)
    Table[I].store(0, std::memory_order_relaxed);
}

void HtmRuntime::nonTxStore(uint64_t *Addr, uint64_t Val) {
  std::atomic<uint64_t> &Stripe = stripeFor(Addr);
  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  SpinBackoff Backoff;
  for (;;) {
    uint64_t Cur = Stripe.load(std::memory_order_acquire);
    if ((Cur & 1) == 0 &&
        Stripe.compare_exchange_weak(Cur, OwnedTag,
                                     std::memory_order_acq_rel))
      break;
    Backoff.pause();
  }
  NonTxClockBumps.fetch_add(1, std::memory_order_relaxed);
  uint64_t Version = Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t Old = __atomic_load_n(Addr, __ATOMIC_RELAXED);
  __atomic_store_n(Addr, Val, __ATOMIC_RELEASE);
  if (Hooks.OnStore)
    Hooks.OnStore(Hooks.Ctx, Addr, Old, Val);
  if (CRAFTY_UNLIKELY(AHooks.OnNonTxStore != nullptr))
    AHooks.OnNonTxStore(AHooks.Ctx, Addr, Version);
  Stripe.store(Version << 1, std::memory_order_release);
}

void HtmRuntime::nonTxStoreBatch(uint64_t *const *Addrs, const uint64_t *Vals,
                                 size_t Count) {
  if (Count == 0)
    return;
  if (Count == 1) {
    nonTxStore(Addrs[0], Vals[0]);
    return;
  }
  // Per-thread scratch: the runtime is shared, the batch path is not
  // reentrant within a thread.
  static thread_local std::vector<std::atomic<uint64_t> *> Stripes;
  Stripes.clear();
  Stripes.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Stripes.push_back(&stripeFor(Addrs[I]));
  std::sort(Stripes.begin(), Stripes.end());
  Stripes.erase(std::unique(Stripes.begin(), Stripes.end()), Stripes.end());

  // Lock every distinct stripe (sorted order: deadlock-free against
  // committers and other batches). These stores must happen, so spin out
  // conflicts rather than failing.
  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  for (std::atomic<uint64_t> *Stripe : Stripes) {
    SpinBackoff Backoff;
    for (;;) {
      uint64_t Cur = Stripe->load(std::memory_order_acquire);
      if ((Cur & 1) == 0 &&
          Stripe->compare_exchange_weak(Cur, OwnedTag,
                                        std::memory_order_acq_rel))
        break;
      Backoff.pause();
    }
  }

  NonTxClockBumps.fetch_add(1, std::memory_order_relaxed);
  uint64_t Version = Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (size_t I = 0; I != Count; ++I) {
    CRAFTY_TX_BOUND(Count); // Caller-sized batch; not inside an HTM tx.
    uint64_t Old = __atomic_load_n(Addrs[I], __ATOMIC_RELAXED);
    __atomic_store_n(Addrs[I], Vals[I], __ATOMIC_RELEASE);
    if (Hooks.OnStore)
      Hooks.OnStore(Hooks.Ctx, Addrs[I], Old, Vals[I]);
    if (CRAFTY_UNLIKELY(AHooks.OnNonTxStore != nullptr))
      AHooks.OnNonTxStore(AHooks.Ctx, Addrs[I], Version);
  }
  uint64_t NewStripeVersion = Version << 1;
  for (std::atomic<uint64_t> *Stripe : Stripes)
    Stripe->store(NewStripeVersion, std::memory_order_release);
}

bool HtmRuntime::nonTxCas(uint64_t *Addr, uint64_t Expected,
                          uint64_t Desired) {
  std::atomic<uint64_t> &Stripe = stripeFor(Addr);
  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  SpinBackoff Backoff;
  uint64_t PreLock;
  for (;;) {
    uint64_t Cur = Stripe.load(std::memory_order_acquire);
    if ((Cur & 1) == 0) {
      PreLock = Cur;
      if (Stripe.compare_exchange_weak(Cur, OwnedTag,
                                       std::memory_order_acq_rel))
        break;
    }
    Backoff.pause();
  }
  uint64_t Cur = __atomic_load_n(Addr, __ATOMIC_ACQUIRE);
  if (Cur != Expected) {
    Stripe.store(PreLock, std::memory_order_release);
    if (CRAFTY_UNLIKELY(AHooks.OnNonTxLoad != nullptr))
      AHooks.OnNonTxLoad(AHooks.Ctx, Addr);
    return false;
  }
  NonTxClockBumps.fetch_add(1, std::memory_order_relaxed);
  uint64_t Version = Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  __atomic_store_n(Addr, Desired, __ATOMIC_RELEASE);
  if (Hooks.OnStore)
    Hooks.OnStore(Hooks.Ctx, Addr, Cur, Desired);
  if (CRAFTY_UNLIKELY(AHooks.OnNonTxStore != nullptr))
    AHooks.OnNonTxStore(AHooks.Ctx, Addr, Version);
  Stripe.store(Version << 1, std::memory_order_release);
  return true;
}

//===----------------------------------------------------------------------===//
// HtmTx
//===----------------------------------------------------------------------===//

HtmTx::HtmTx(HtmRuntime &Runtime, uint32_t ThreadId, uint64_t RngSeed)
    : Runtime(Runtime), ThreadId(ThreadId),
      SpuriousRng(RngSeed * 0x9e3779b97f4a7c15ull + ThreadId + 1) {
  const HtmConfig &C = Runtime.config();
  size_t MaxWords = C.MaxWriteSetLines * (CacheLineBytes / 8);
  size_t BufSize = std::max<size_t>(64, nextPow2(MaxWords * 2));
  WriteBuf.resize(BufSize);
  WriteBufMask = BufSize - 1;
  WriteOrder.reserve(MaxWords + 1);
  StreamWrites.reserve(MaxWords + 1);
  size_t LineSlots = std::max<size_t>(64, nextPow2(C.MaxWriteSetLines * 2));
  WriteLines.resize(LineSlots);
  WriteLinesMask = LineSlots - 1;
  size_t ReadSlots = std::max<size_t>(64, nextPow2(C.MaxReadSetLines * 2));
  ReadSet.resize(ReadSlots);
  ReadSetMask = ReadSlots - 1;
  ReadOrder.reserve(C.MaxReadSetLines);
  LockedStripes.reserve(MaxWords);
  PreLockVersions.reserve(MaxWords);
  // Reserve past the spill threshold so writtenWordTag pointers stay
  // stable across dense inserts (they are only contractually valid until
  // the next store, but avoiding reallocation keeps the path cheap).
  DenseWrites.reserve(
      std::min(Runtime.tuning().WriteSetHashThreshold, MaxWords) + 1);
  DenseAddrs.reserve(DenseWrites.capacity());
}

HtmTx::~HtmTx() = default;

void HtmTx::begin() {
  assert(!Active && "nested hardware transactions are not supported");
  ++Epoch;
  Active = true;
  SnapshotVersion = Runtime.Clock.load(std::memory_order_acquire);
  WriteOrder.clear();
  DenseWrites.clear();
  DenseAddrs.clear();
  DenseLimit = Runtime.tuning().WriteSetHashThreshold;
  DenseMode = DenseLimit > 0;
  WriteFilter = 0;
  StreamWrites.clear();
  LastWrittenLine = ~(uintptr_t)0;
  WriteLineCount = 0;
  ReadOrder.clear();
  LockedStripes.clear();
  PreLockVersions.clear();
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxBegin != nullptr))
    AHooks.OnTxBegin(AHooks.Ctx, ThreadId, SnapshotVersion);
}

void HtmTx::abortExplicit(uint32_t UserCode) {
  abortTx(AbortCode::Explicit, UserCode);
}

void HtmTx::abortTx(AbortCode Code, uint32_t UserCode) {
  assert(Active && "abort outside a transaction");
  // Release any commit-time locks, restoring pre-lock versions (no
  // write-back has happened).
  for (size_t I = 0, E = LockedStripes.size(); I != E; ++I)
    LockedStripes[I]->store(PreLockVersions[I], std::memory_order_release);
  LockedStripes.clear();
  PreLockVersions.clear();
  Active = false;
  LastAbort = Code;
  LastUserCode = UserCode;
  switch (Code) {
  case AbortCode::Conflict:
    ++Stats.AbortConflict;
    break;
  case AbortCode::Capacity:
    ++Stats.AbortCapacity;
    break;
  case AbortCode::Explicit:
    ++Stats.AbortExplicit;
    break;
  case AbortCode::Zero:
    ++Stats.AbortZero;
    break;
  case AbortCode::None:
    CRAFTY_UNREACHABLE("abort with no cause");
  }
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxAbort != nullptr))
    AHooks.OnTxAbort(AHooks.Ctx, ThreadId);
  longjmp(Env, 1);
}

HtmTx::WriteSlot *HtmTx::spillDenseWrites(uint64_t *Addr, uint64_t Hash) {
  // The write set outgrew the dense array: migrate it into the hash
  // table in insertion order (WriteOrder preserves the write-back order)
  // and continue in hash mode for the rest of the transaction.
  DenseMode = false;
  for (const WriteSlot &Dense : DenseWrites) {
    WriteSlot *Slot =
        findWriteSlotHash(Dense.Addr, addrHash(Dense.Addr), /*Insert=*/true);
    Slot->Val = Dense.Val;
    Slot->OrMask = Dense.OrMask;
    Slot->UserTag = Dense.UserTag;
    Slot->Shift = Dense.Shift;
    Slot->IsCommitVersion = Dense.IsCommitVersion;
  }
  DenseWrites.clear();
  DenseAddrs.clear();
  return findWriteSlotHash(Addr, Hash, /*Insert=*/true);
}

bool HtmTx::tryExtendSnapshot() {
  // TinySTM-style timestamp extension: sample the clock first, then
  // verify every read stripe is exactly as first read (same version,
  // unlocked). The read set was then stable through the validation, so
  // the reads are consistent at the sample and the snapshot may advance
  // to it. Stamped stripe versions never exceed the clock, so a
  // successful extension always covers the version that triggered it.
  uint64_t NewSnap = Runtime.Clock.load(std::memory_order_acquire);
  if (NewSnap == SnapshotVersion)
    return false;
  Stats.ValidatedReadSlots += ReadOrder.size();
  for (uint32_t Idx : ReadOrder) {
    ReadSlot &Slot = ReadSet[Idx];
    if (Slot.Stripe->load(std::memory_order_acquire) != Slot.Version)
      return false;
  }
  SnapshotVersion = NewSnap;
  ++Stats.SnapshotExtensions;
  return true;
}

uint64_t HtmTx::loadStripeSlow(std::atomic<uint64_t> &Stripe) {
  for (;;) {
    uint64_t V = Stripe.load(std::memory_order_acquire);
    if (CRAFTY_LIKELY((V & 1) == 0 && (V >> 1) <= SnapshotVersion))
      return V;
    // A locked stripe is a committer mid-write-back: no consistent
    // version to extend to. Otherwise the stripe outran our snapshot;
    // try to catch the snapshot up instead of aborting. The loop
    // terminates: each pass either returns, aborts, or strictly raises
    // the snapshot.
    if ((V & 1) || !Runtime.tuning().SnapshotExtension ||
        !tryExtendSnapshot())
      abortTx(AbortCode::Conflict);
  }
}

uint64_t HtmTx::preLockVersionOf(std::atomic<uint64_t> *Stripe) {
  if (Runtime.tuning().SortWriteSet) {
    auto It = std::lower_bound(LockedStripes.begin(), LockedStripes.end(),
                               Stripe);
    assert(It != LockedStripes.end() && *It == Stripe &&
           "owned tag without a lock record");
    return PreLockVersions[It - LockedStripes.begin()];
  }
  for (size_t I = 0, E = LockedStripes.size(); I != E; ++I)
    if (LockedStripes[I] == Stripe)
      return PreLockVersions[I];
  CRAFTY_UNREACHABLE("owned tag without a lock record");
}

bool HtmTx::validateReadSet(uint64_t OwnedTag) {
  // Walk only the occupied slots (dense index), not the whole table: the
  // table is sized for the capacity limit (16K slots by default), while a
  // typical transaction reads a handful of stripes.
  Stats.ValidatedReadSlots += ReadOrder.size();
  for (uint32_t Idx : ReadOrder) {
    ReadSlot &Slot = ReadSet[Idx];
    uint64_t Cur = Slot.Stripe->load(std::memory_order_acquire);
    if (Cur == OwnedTag) {
      // We hold this stripe's lock; judge by its pre-lock version.
      Cur = preLockVersionOf(Slot.Stripe);
    }
    if (Cur & 1)
      return false; // Locked by a concurrent committer.
    if ((Cur >> 1) > SnapshotVersion)
      return false; // Overwritten since our snapshot.
  }
  return true;
}

uint64_t HtmTx::commit() {
  assert(Active && "commit outside a transaction");
  maybeInjectSpuriousAbort();
  const MemoryHooks &Hooks = Runtime.memoryHooks();
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (writeSetWords() == 0) {
    // Read-only: reads were validated at access time against the
    // snapshot (sample-and-validate); the global clock is not bumped.
    Active = false;
    ++Stats.Commits;
    if (Hooks.OnCommitFence)
      Hooks.OnCommitFence(Hooks.Ctx, ThreadId);
    if (CRAFTY_UNLIKELY(AHooks.OnTxCommit != nullptr))
      AHooks.OnTxCommit(AHooks.Ctx, ThreadId, SnapshotVersion,
                        /*HadWrites=*/false);
    return SnapshotVersion;
  }

  // Gather and lock the distinct write stripes. Consecutive writes
  // usually land on the same stripe (adjacent words of an undo-log
  // entry, fields of one object), so drop consecutive duplicates before
  // deduplicating fully.
  const size_t NumBuf = DenseMode ? DenseWrites.size() : WriteOrder.size();
  auto bufSlot = [&](size_t I) -> WriteSlot & {
    return DenseMode ? DenseWrites[I] : WriteBuf[WriteOrder[I]];
  };
  std::atomic<uint64_t> *PrevStripe = nullptr;
  for (size_t I = 0; I != NumBuf; ++I) {
    std::atomic<uint64_t> *Stripe = &Runtime.stripeFor(bufSlot(I).Addr);
    if (Stripe != PrevStripe)
      LockedStripes.push_back(Stripe);
    PrevStripe = Stripe;
  }
  for (const auto &[Addr, Val] : StreamWrites) {
    std::atomic<uint64_t> *Stripe = &Runtime.stripeFor(Addr);
    if (Stripe != PrevStripe)
      LockedStripes.push_back(Stripe);
    PrevStripe = Stripe;
  }
  if (CRAFTY_LIKELY(Runtime.tuning().SortWriteSet)) {
    // Address order: deadlock-free between committers (STO_SORT_WRITESET).
    std::sort(LockedStripes.begin(), LockedStripes.end());
    LockedStripes.erase(
        std::unique(LockedStripes.begin(), LockedStripes.end()),
        LockedStripes.end());
  } else {
    // Insertion order (the ablation's off position): a lock-order cycle
    // between committers is broken by the bounded commit spin aborting.
    size_t Out = 0;
    for (size_t I = 0, E = LockedStripes.size(); I != E; ++I) {
      bool Dup = false;
      for (size_t J = 0; J != Out; ++J)
        if (LockedStripes[J] == LockedStripes[I]) {
          Dup = true;
          break;
        }
      if (!Dup)
        LockedStripes[Out++] = LockedStripes[I];
    }
    LockedStripes.resize(Out);
  }

  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  size_t NumLocked = 0;
  for (std::atomic<uint64_t> *Stripe : LockedStripes) {
    unsigned Spins = 0;
    for (;;) {
      uint64_t Cur = Stripe->load(std::memory_order_acquire);
      if ((Cur & 1) == 0) {
        if (Stripe->compare_exchange_weak(Cur, OwnedTag,
                                          std::memory_order_acq_rel)) {
          PreLockVersions.push_back(Cur);
          break;
        }
        continue;
      }
      if (++Spins > Runtime.config().CommitLockSpinLimit) {
        LockedStripes.resize(NumLocked);
        abortTx(AbortCode::Conflict);
      }
      std::this_thread::yield();
    }
    ++NumLocked;
  }

  uint64_t CommitVersion =
      Runtime.Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  ++Stats.ClockBumps;
  // CommitVersion == SnapshotVersion + 1 proves no writing commit
  // serialized since the snapshot (which access-time checks -- and any
  // timestamp extension -- already validated against), so the read-set
  // walk is skipped. Extension raises the snapshot toward the clock, so
  // under contention more commits hit this fast path, not fewer.
  if (CommitVersion != SnapshotVersion + 1 && !validateReadSet(OwnedTag))
    abortTx(AbortCode::Conflict);

  // SFENCE semantics of an RTM commit: the committing thread's pending
  // cache-line write-backs complete before its stores become visible.
  if (Hooks.OnCommitFence)
    Hooks.OnCommitFence(Hooks.Ctx, ThreadId);

  for (size_t I = 0; I != NumBuf; ++I) {
    WriteSlot &Slot = bufSlot(I);
    uint64_t Val = Slot.IsCommitVersion
                       ? (CommitVersion << Slot.Shift) | Slot.OrMask
                       : Slot.Val;
    uint64_t Old = __atomic_load_n(Slot.Addr, __ATOMIC_RELAXED);
    __atomic_store_n(Slot.Addr, Val, __ATOMIC_RELEASE);
    if (Hooks.OnStore)
      Hooks.OnStore(Hooks.Ctx, Slot.Addr, Old, Val);
  }
  for (const auto &[Addr, Val] : StreamWrites) {
    uint64_t Old = __atomic_load_n(Addr, __ATOMIC_RELAXED);
    __atomic_store_n(Addr, Val, __ATOMIC_RELEASE);
    if (Hooks.OnStore)
      Hooks.OnStore(Hooks.Ctx, Addr, Old, Val);
  }

  // Observer notification precedes the stripe release: any conflicting
  // access serializes after this commit only once the stripes are free, so
  // the observer sees hook events in serialization order (AccessHooks).
  if (CRAFTY_UNLIKELY(AHooks.OnTxCommit != nullptr))
    AHooks.OnTxCommit(AHooks.Ctx, ThreadId, CommitVersion,
                      /*HadWrites=*/true);

  uint64_t NewStripeVersion = CommitVersion << 1;
  for (std::atomic<uint64_t> *Stripe : LockedStripes)
    Stripe->store(NewStripeVersion, std::memory_order_release);
  LockedStripes.clear();
  PreLockVersions.clear();
  Active = false;
  ++Stats.Commits;
  uint64_t Words = writeSetWords();
  Stats.WriteWordsTotal += Words;
  Stats.MaxWriteWordsPerTxn = std::max(Stats.MaxWriteWordsPerTxn, Words);
  return CommitVersion;
}
