//===- htm/Htm.cpp - Software emulation of commodity HTM ------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "htm/Htm.h"

#include "support/Spin.h"

#include <algorithm>

using namespace crafty;

const char *crafty::abortCodeName(AbortCode Code) {
  switch (Code) {
  case AbortCode::None:
    return "none";
  case AbortCode::Conflict:
    return "conflict";
  case AbortCode::Capacity:
    return "capacity";
  case AbortCode::Explicit:
    return "explicit";
  case AbortCode::Zero:
    return "zero";
  }
  CRAFTY_UNREACHABLE("bad abort code");
}

static size_t nextPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

//===----------------------------------------------------------------------===//
// HtmRuntime
//===----------------------------------------------------------------------===//

HtmRuntime::HtmRuntime(HtmConfig Config) : Config(Config) {
  size_t Entries = (size_t)1 << Config.LockTableBits;
  TableMask = Entries - 1;
  Table = std::make_unique<std::atomic<uint64_t>[]>(Entries);
  for (size_t I = 0; I != Entries; ++I)
    Table[I].store(0, std::memory_order_relaxed);
}

void HtmRuntime::nonTxStore(uint64_t *Addr, uint64_t Val) {
  std::atomic<uint64_t> &Stripe = stripeFor(Addr);
  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  SpinBackoff Backoff;
  for (;;) {
    uint64_t Cur = Stripe.load(std::memory_order_acquire);
    if ((Cur & 1) == 0 &&
        Stripe.compare_exchange_weak(Cur, OwnedTag,
                                     std::memory_order_acq_rel))
      break;
    Backoff.pause();
  }
  uint64_t Version = Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t Old = __atomic_load_n(Addr, __ATOMIC_RELAXED);
  __atomic_store_n(Addr, Val, __ATOMIC_RELEASE);
  if (Hooks.OnStore)
    Hooks.OnStore(Hooks.Ctx, Addr, Old, Val);
  if (CRAFTY_UNLIKELY(AHooks.OnNonTxStore != nullptr))
    AHooks.OnNonTxStore(AHooks.Ctx, Addr, Version);
  Stripe.store(Version << 1, std::memory_order_release);
}

bool HtmRuntime::nonTxCas(uint64_t *Addr, uint64_t Expected,
                          uint64_t Desired) {
  std::atomic<uint64_t> &Stripe = stripeFor(Addr);
  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  SpinBackoff Backoff;
  uint64_t PreLock;
  for (;;) {
    uint64_t Cur = Stripe.load(std::memory_order_acquire);
    if ((Cur & 1) == 0) {
      PreLock = Cur;
      if (Stripe.compare_exchange_weak(Cur, OwnedTag,
                                       std::memory_order_acq_rel))
        break;
    }
    Backoff.pause();
  }
  uint64_t Cur = __atomic_load_n(Addr, __ATOMIC_ACQUIRE);
  if (Cur != Expected) {
    Stripe.store(PreLock, std::memory_order_release);
    if (CRAFTY_UNLIKELY(AHooks.OnNonTxLoad != nullptr))
      AHooks.OnNonTxLoad(AHooks.Ctx, Addr);
    return false;
  }
  uint64_t Version = Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  __atomic_store_n(Addr, Desired, __ATOMIC_RELEASE);
  if (Hooks.OnStore)
    Hooks.OnStore(Hooks.Ctx, Addr, Cur, Desired);
  if (CRAFTY_UNLIKELY(AHooks.OnNonTxStore != nullptr))
    AHooks.OnNonTxStore(AHooks.Ctx, Addr, Version);
  Stripe.store(Version << 1, std::memory_order_release);
  return true;
}

//===----------------------------------------------------------------------===//
// HtmTx
//===----------------------------------------------------------------------===//

HtmTx::HtmTx(HtmRuntime &Runtime, uint32_t ThreadId, uint64_t RngSeed)
    : Runtime(Runtime), ThreadId(ThreadId),
      SpuriousRng(RngSeed * 0x9e3779b97f4a7c15ull + ThreadId + 1) {
  const HtmConfig &C = Runtime.config();
  size_t MaxWords = C.MaxWriteSetLines * (CacheLineBytes / 8);
  size_t BufSize = std::max<size_t>(64, nextPow2(MaxWords * 2));
  WriteBuf.resize(BufSize);
  WriteBufMask = BufSize - 1;
  WriteOrder.reserve(MaxWords + 1);
  size_t LineSlots = std::max<size_t>(64, nextPow2(C.MaxWriteSetLines * 2));
  WriteLines.resize(LineSlots);
  WriteLinesMask = LineSlots - 1;
  size_t ReadSlots = std::max<size_t>(64, nextPow2(C.MaxReadSetLines * 2));
  ReadSet.resize(ReadSlots);
  ReadSetMask = ReadSlots - 1;
  ReadOrder.reserve(C.MaxReadSetLines);
  LockedStripes.reserve(MaxWords);
  PreLockVersions.reserve(MaxWords);
}

HtmTx::~HtmTx() = default;

void HtmTx::begin() {
  assert(!Active && "nested hardware transactions are not supported");
  ++Epoch;
  Active = true;
  SnapshotVersion = Runtime.Clock.load(std::memory_order_acquire);
  WriteOrder.clear();
  StreamWrites.clear();
  LastWrittenLine = ~(uintptr_t)0;
  WriteLineCount = 0;
  ReadOrder.clear();
  LockedStripes.clear();
  PreLockVersions.clear();
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxBegin != nullptr))
    AHooks.OnTxBegin(AHooks.Ctx, ThreadId, SnapshotVersion);
}

void HtmTx::maybeInjectSpuriousAbort() {
  uint32_t P = Runtime.config().SpuriousAbortPerMillion;
  if (CRAFTY_LIKELY(P == 0))
    return;
  if (SpuriousRng.chance(P, 1000000))
    abortTx(AbortCode::Zero);
}

HtmTx::WriteSlot *HtmTx::findWriteSlot(uint64_t *Addr, bool Insert) {
  uint64_t H = reinterpret_cast<uintptr_t>(Addr) * 0x9e3779b97f4a7c15ull;
  size_t Idx = (H >> 32) & WriteBufMask;
  for (;;) {
    WriteSlot &Slot = WriteBuf[Idx];
    if (Slot.Epoch == Epoch) {
      if (Slot.Addr == Addr)
        return &Slot;
      Idx = (Idx + 1) & WriteBufMask;
      continue;
    }
    if (!Insert)
      return nullptr;
    // Empty slot: claim it. The buffer is sized 2x the word capacity and
    // the capacity check below keeps the load factor bounded.
    if (WriteOrder.size() + StreamWrites.size() >=
        Runtime.config().MaxWriteSetLines * (CacheLineBytes / 8))
      abortTx(AbortCode::Capacity);
    Slot.Addr = Addr;
    Slot.Epoch = Epoch;
    Slot.Val = 0;
    Slot.IsCommitVersion = false;
    WriteOrder.push_back((uint32_t)Idx);
    return &Slot;
  }
}

void HtmTx::noteWrittenLine(const void *Addr) {
  uintptr_t Line = lineOf(Addr);
  if (Line == LastWrittenLine)
    return;
  LastWrittenLine = Line;
  uint64_t H = (uint64_t)Line * 0x9e3779b97f4a7c15ull;
  size_t Idx = (H >> 32) & WriteLinesMask;
  for (;;) {
    LineSlot &Slot = WriteLines[Idx];
    if (Slot.Epoch == Epoch) {
      if (Slot.Line == Line)
        return;
      Idx = (Idx + 1) & WriteLinesMask;
      continue;
    }
    if (WriteLineCount >= Runtime.config().MaxWriteSetLines)
      abortTx(AbortCode::Capacity);
    Slot.Line = Line;
    Slot.Epoch = Epoch;
    ++WriteLineCount;
    return;
  }
}

void HtmTx::recordRead(std::atomic<uint64_t> *Stripe, uint64_t Version) {
  uint64_t H = reinterpret_cast<uintptr_t>(Stripe) * 0x9e3779b97f4a7c15ull;
  size_t Idx = (H >> 32) & ReadSetMask;
  for (;;) {
    ReadSlot &Slot = ReadSet[Idx];
    if (Slot.Epoch == Epoch) {
      if (Slot.Stripe == Stripe)
        return; // Re-read of a known stripe; the first version suffices.
      Idx = (Idx + 1) & ReadSetMask;
      continue;
    }
    if (ReadOrder.size() >= Runtime.config().MaxReadSetLines)
      abortTx(AbortCode::Capacity);
    Slot.Stripe = Stripe;
    Slot.Version = Version;
    Slot.Epoch = Epoch;
    ReadOrder.push_back((uint32_t)Idx);
    return;
  }
}

uint64_t HtmTx::load(const uint64_t *Addr) {
  assert(Active && "transactional load outside a transaction");
  maybeInjectSpuriousAbort();
  if (WriteSlot *Slot = findWriteSlot(const_cast<uint64_t *>(Addr), false)) {
    // A commit-version slot's value is unknown until commit; the paper's
    // algorithms never read those words back within the same transaction.
    return Slot->IsCommitVersion ? 0 : Slot->Val;
  }
  std::atomic<uint64_t> &Stripe = Runtime.stripeFor(Addr);
  uint64_t V1 = Stripe.load(std::memory_order_acquire);
  if (CRAFTY_UNLIKELY(V1 & 1))
    abortTx(AbortCode::Conflict);
  if (CRAFTY_UNLIKELY((V1 >> 1) > SnapshotVersion))
    abortTx(AbortCode::Conflict);
  uint64_t Val = __atomic_load_n(Addr, __ATOMIC_ACQUIRE);
  std::atomic_thread_fence(std::memory_order_acquire);
  uint64_t V2 = Stripe.load(std::memory_order_acquire);
  if (CRAFTY_UNLIKELY(V1 != V2))
    abortTx(AbortCode::Conflict);
  recordRead(&Stripe, V1);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxLoad != nullptr))
    AHooks.OnTxLoad(AHooks.Ctx, ThreadId, Addr);
  return Val;
}

void HtmTx::store(uint64_t *Addr, uint64_t Val) {
  assert(Active && "transactional store outside a transaction");
  maybeInjectSpuriousAbort();
  WriteSlot *Slot = findWriteSlot(Addr, true);
  Slot->Val = Val;
  Slot->IsCommitVersion = false;
  noteWrittenLine(Addr);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxStore != nullptr))
    AHooks.OnTxStore(AHooks.Ctx, ThreadId, Addr);
}

void HtmTx::storeStream(uint64_t *Addr, uint64_t Val) {
  assert(Active && "transactional store outside a transaction");
  if (WriteOrder.size() + StreamWrites.size() >=
      Runtime.config().MaxWriteSetLines * (CacheLineBytes / 8))
    abortTx(AbortCode::Capacity);
  StreamWrites.emplace_back(Addr, Val);
  noteWrittenLine(Addr);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxStore != nullptr))
    AHooks.OnTxStore(AHooks.Ctx, ThreadId, Addr);
}

void HtmTx::storeCommitVersion(uint64_t *Addr, unsigned Shift,
                               uint64_t OrMask) {
  assert(Active && "transactional store outside a transaction");
  WriteSlot *Slot = findWriteSlot(Addr, true);
  Slot->IsCommitVersion = true;
  Slot->Shift = (uint8_t)Shift;
  Slot->OrMask = OrMask;
  noteWrittenLine(Addr);
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxStore != nullptr))
    AHooks.OnTxStore(AHooks.Ctx, ThreadId, Addr);
}

void HtmTx::abortExplicit(uint32_t UserCode) {
  abortTx(AbortCode::Explicit, UserCode);
}

void HtmTx::abortTx(AbortCode Code, uint32_t UserCode) {
  assert(Active && "abort outside a transaction");
  // Release any commit-time locks, restoring pre-lock versions (no
  // write-back has happened).
  for (size_t I = 0, E = LockedStripes.size(); I != E; ++I)
    LockedStripes[I]->store(PreLockVersions[I], std::memory_order_release);
  LockedStripes.clear();
  PreLockVersions.clear();
  Active = false;
  LastAbort = Code;
  LastUserCode = UserCode;
  switch (Code) {
  case AbortCode::Conflict:
    ++Stats.AbortConflict;
    break;
  case AbortCode::Capacity:
    ++Stats.AbortCapacity;
    break;
  case AbortCode::Explicit:
    ++Stats.AbortExplicit;
    break;
  case AbortCode::Zero:
    ++Stats.AbortZero;
    break;
  case AbortCode::None:
    CRAFTY_UNREACHABLE("abort with no cause");
  }
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (CRAFTY_UNLIKELY(AHooks.OnTxAbort != nullptr))
    AHooks.OnTxAbort(AHooks.Ctx, ThreadId);
  longjmp(Env, 1);
}

bool HtmTx::validateReadSet(uint64_t OwnedTag) {
  // Walk only the occupied slots (dense index), not the whole table: the
  // table is sized for the capacity limit (16K slots by default), while a
  // typical transaction reads a handful of stripes.
  Stats.ValidatedReadSlots += ReadOrder.size();
  for (uint32_t Idx : ReadOrder) {
    ReadSlot &Slot = ReadSet[Idx];
    uint64_t Cur = Slot.Stripe->load(std::memory_order_acquire);
    if (Cur == OwnedTag) {
      // We hold this stripe's lock; judge by its pre-lock version.
      auto It = std::lower_bound(LockedStripes.begin(), LockedStripes.end(),
                                 Slot.Stripe);
      assert(It != LockedStripes.end() && *It == Slot.Stripe &&
             "owned tag without a lock record");
      Cur = PreLockVersions[It - LockedStripes.begin()];
    }
    if (Cur & 1)
      return false; // Locked by a concurrent committer.
    if ((Cur >> 1) > SnapshotVersion)
      return false; // Overwritten since our snapshot.
  }
  return true;
}

uint64_t HtmTx::commit() {
  assert(Active && "commit outside a transaction");
  maybeInjectSpuriousAbort();
  const MemoryHooks &Hooks = Runtime.memoryHooks();
  const AccessHooks &AHooks = Runtime.accessHooks();
  if (WriteOrder.empty() && StreamWrites.empty()) {
    // Read-only: reads were validated at access time against the snapshot.
    Active = false;
    ++Stats.Commits;
    if (Hooks.OnCommitFence)
      Hooks.OnCommitFence(Hooks.Ctx, ThreadId);
    if (CRAFTY_UNLIKELY(AHooks.OnTxCommit != nullptr))
      AHooks.OnTxCommit(AHooks.Ctx, ThreadId, SnapshotVersion,
                        /*HadWrites=*/false);
    return SnapshotVersion;
  }

  // Gather and lock the distinct write stripes in address order (avoids
  // deadlock between committers).
  for (uint32_t Idx : WriteOrder)
    LockedStripes.push_back(&Runtime.stripeFor(WriteBuf[Idx].Addr));
  for (const auto &[Addr, Val] : StreamWrites)
    LockedStripes.push_back(&Runtime.stripeFor(Addr));
  std::sort(LockedStripes.begin(), LockedStripes.end());
  LockedStripes.erase(
      std::unique(LockedStripes.begin(), LockedStripes.end()),
      LockedStripes.end());

  uint64_t OwnedTag = reinterpret_cast<uintptr_t>(this) | 1;
  size_t NumLocked = 0;
  for (std::atomic<uint64_t> *Stripe : LockedStripes) {
    unsigned Spins = 0;
    for (;;) {
      uint64_t Cur = Stripe->load(std::memory_order_acquire);
      if ((Cur & 1) == 0) {
        if (Stripe->compare_exchange_weak(Cur, OwnedTag,
                                          std::memory_order_acq_rel)) {
          PreLockVersions.push_back(Cur);
          break;
        }
        continue;
      }
      if (++Spins > Runtime.config().CommitLockSpinLimit) {
        LockedStripes.resize(NumLocked);
        abortTx(AbortCode::Conflict);
      }
      std::this_thread::yield();
    }
    ++NumLocked;
  }

  uint64_t CommitVersion =
      Runtime.Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (CommitVersion != SnapshotVersion + 1 && !validateReadSet(OwnedTag))
    abortTx(AbortCode::Conflict);

  // SFENCE semantics of an RTM commit: the committing thread's pending
  // cache-line write-backs complete before its stores become visible.
  if (Hooks.OnCommitFence)
    Hooks.OnCommitFence(Hooks.Ctx, ThreadId);

  for (uint32_t Idx : WriteOrder) {
    WriteSlot &Slot = WriteBuf[Idx];
    uint64_t Val = Slot.IsCommitVersion
                       ? (CommitVersion << Slot.Shift) | Slot.OrMask
                       : Slot.Val;
    uint64_t Old = __atomic_load_n(Slot.Addr, __ATOMIC_RELAXED);
    __atomic_store_n(Slot.Addr, Val, __ATOMIC_RELEASE);
    if (Hooks.OnStore)
      Hooks.OnStore(Hooks.Ctx, Slot.Addr, Old, Val);
  }
  for (const auto &[Addr, Val] : StreamWrites) {
    uint64_t Old = __atomic_load_n(Addr, __ATOMIC_RELAXED);
    __atomic_store_n(Addr, Val, __ATOMIC_RELEASE);
    if (Hooks.OnStore)
      Hooks.OnStore(Hooks.Ctx, Addr, Old, Val);
  }

  // Observer notification precedes the stripe release: any conflicting
  // access serializes after this commit only once the stripes are free, so
  // the observer sees hook events in serialization order (AccessHooks).
  if (CRAFTY_UNLIKELY(AHooks.OnTxCommit != nullptr))
    AHooks.OnTxCommit(AHooks.Ctx, ThreadId, CommitVersion,
                      /*HadWrites=*/true);

  uint64_t NewStripeVersion = CommitVersion << 1;
  for (std::atomic<uint64_t> *Stripe : LockedStripes)
    Stripe->store(NewStripeVersion, std::memory_order_release);
  LockedStripes.clear();
  PreLockVersions.clear();
  Active = false;
  ++Stats.Commits;
  return CommitVersion;
}
