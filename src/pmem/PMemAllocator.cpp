//===- pmem/PMemAllocator.cpp - Allocator over persistent memory ----------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmem/PMemAllocator.h"

#include "support/Compiler.h"

#include <cassert>
#include <cstring>

using namespace crafty;

// Block layout: an 8-byte header holding the size class, followed by the
// user block. Free blocks link through their first user word.

PMemAllocator::PMemAllocator(PMemPool &Pool, unsigned NumThreads,
                             size_t ArenaBytes) {
  Arenas.resize(NumThreads);
  for (Arena &A : Arenas) {
    A.Cursor = static_cast<uint8_t *>(Pool.carve(ArenaBytes));
    A.End = A.Cursor + ArenaBytes;
  }
}

unsigned PMemAllocator::classFor(size_t Bytes) {
  unsigned Class = 0;
  size_t Size = 16;
  while (Size < Bytes) {
    Size <<= 1;
    ++Class;
  }
  return Class;
}

void *PMemAllocator::alloc(unsigned ThreadId, size_t Bytes) {
  assert(ThreadId < Arenas.size() && "thread id out of range");
  if (Bytes == 0)
    Bytes = 8;
  unsigned Class = classFor(Bytes);
  if (Class >= NumClasses)
    fatalError("PMemAllocator: allocation larger than the largest class");
  Arena &A = Arenas[ThreadId];
  size_t Size = classSize(Class);
  if (void *Head = A.FreeLists[Class]) {
    A.FreeLists[Class] = *static_cast<void **>(Head);
    A.InUse += Size;
    return Head;
  }
  if (A.Cursor + 8 + Size > A.End)
    return nullptr;
  auto *Header = reinterpret_cast<uint64_t *>(A.Cursor);
  *Header = Class;
  void *User = A.Cursor + 8;
  A.Cursor += 8 + Size;
  A.InUse += Size;
  return User;
}

void PMemAllocator::dealloc(unsigned ThreadId, void *Ptr) {
  assert(ThreadId < Arenas.size() && "thread id out of range");
  if (!Ptr)
    return;
  auto *Header = reinterpret_cast<uint64_t *>(Ptr) - 1;
  unsigned Class = (unsigned)*Header;
  assert(Class < NumClasses && "corrupt allocation header");
  Arena &A = Arenas[ThreadId];
  *static_cast<void **>(Ptr) = A.FreeLists[Class];
  A.FreeLists[Class] = Ptr;
  A.InUse -= classSize(Class);
}

size_t PMemAllocator::bytesInUse() const {
  size_t Total = 0;
  for (const Arena &A : Arenas)
    Total += A.InUse;
  return Total;
}
