//===- pmem/PMemPool.h - Persistent-memory simulator -----------*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A byte-addressable persistent-memory simulator. The reproduction host
/// has no NVDIMM, so the pool provides two modes:
///
///  - LatencyOnly reproduces the paper's evaluation methodology (Section
///    6): NVM lives in DRAM and each drain that follows at least one CLWB
///    busy-waits for the configured write-back latency (300 ns by default;
///    100 ns for the appendix sensitivity study).
///
///  - Tracked additionally maintains a *persistent image*: a shadow copy
///    holding exactly the bytes that would survive a power failure.
///    Program stores update only the volatile view. clwb() schedules a
///    cache line; drain() copies scheduled lines into the image. A seeded
///    evictor may copy any dirty line at any time, modeling write-back
///    caches persisting lines spontaneously -- the behavior that makes
///    undo logging necessary in the first place. crash() freezes the
///    image so the recovery observer (recovery/Recovery.h) can be tested
///    against every state a real crash could expose.
///
/// The pool integrates with the HTM emulation through MemoryHooks: a
/// committed transactional store marks its line dirty, and a commit fence
/// (RTM's SFENCE semantics) completes the committing thread's pending
/// CLWBs before the transaction's stores become visible. That ordering is
/// what lets Crafty flush undo-log entries without draining: the next
/// hardware transaction's commit is the drain.
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_PMEM_PMEMPOOL_H
#define CRAFTY_PMEM_PMEMPOOL_H

#include "htm/Htm.h"
#include "support/Annotations.h"
#include "support/CacheLine.h"
#include "support/Mutex.h"
#include "support/Rng.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace crafty {

/// Operating mode of the simulator; see the file comment.
enum class PMemMode : uint8_t { LatencyOnly, Tracked };

/// Configuration of a PMemPool.
struct PMemConfig {
  /// Pool size in bytes (rounded up to a cache-line multiple).
  size_t PoolBytes = 16 << 20;
  PMemMode Mode = PMemMode::LatencyOnly;
  /// NVM write-back completion latency: a CLWB issued at time t completes
  /// at t + DrainLatencyNs, and a drain (SFENCE) waits only for CLWBs
  /// still in flight -- so flushes overlapped with enough computation
  /// drain for free, the property Crafty's flush-without-drain design
  /// exploits and the paper's 300 ns busy-wait methodology measures
  /// (Section 6; 100 ns in Appendix A).
  uint64_t DrainLatencyNs = 300;
  /// In Tracked mode, probability (per million committed stores) that the
  /// stored line is immediately written back to the persistent image,
  /// modeling spontaneous cache eviction. 0 disables.
  uint32_t EvictionPerMillion = 0;
  uint64_t EvictionSeed = 42;
  /// Maximum threads that may issue CLWBs (per-thread pending queues).
  unsigned MaxThreads = 64;
  /// Tracked mode: copy a line to the persistent image at CLWB issue time
  /// instead of at the drain. Hardware may perform the write-back at any
  /// instant between the CLWB and the fence; the default (drain-time)
  /// models the latest legal instant, this option the earliest. Under it
  /// a store to a line *after* its CLWB is not covered by the next drain
  /// unless a fresh CLWB follows the store -- the re-dirty-after-clwb
  /// hazard correct flush disciplines must already tolerate.
  bool EagerWriteback = false;
  /// Tracked mode: back the persistent image with a MAP_SHARED file
  /// mapping at this path instead of anonymous heap memory, so the image
  /// survives the *process* dying (the KV service's SIGKILL crash tests).
  /// If the file already exists with the right size the pool attaches to
  /// it: the volatile view starts as a copy of the image (the state a
  /// machine restart would see) and PMemPool::attachedFromImage() returns
  /// true so the owner knows to run recovery instead of formatting.
  /// Page-cache writes survive SIGKILL, so no msync discipline is needed;
  /// only whole-machine failure is outside the model.
  std::string BackingPath;
};

/// Cumulative persistence-operation statistics.
struct PMemStats {
  /// Line-flush requests software issued (clwb, and one per line of
  /// clwbRange / clwbLines / persistImageWords batches), including
  /// requests the pending-line filter coalesced away.
  uint64_t ClwbCalls = 0;
  /// Line write-backs actually armed after coalescing: repeated flushes
  /// of a line within one flush epoch (the span between two drains of the
  /// issuing thread) with no intervening store to it are O(1) no-ops and
  /// count only as ClwbCalls.
  uint64_t LinesScheduled = 0;
  /// Own-thread drains, including empty ones (remote drains not counted).
  uint64_t Drains = 0;
  /// Drains that found no pending write-backs (free on hardware too).
  uint64_t EmptyDrains = 0;
  uint64_t EvictedLines = 0;

  uint64_t drainsWithWork() const { return Drains - EmptyDrains; }
};

/// One word-granular image persist for persistImageWords batches.
struct PMemWordWrite {
  uint64_t *Addr;
  uint64_t Val;
};

/// Observer of every persistence-relevant event a PMemPool sees: committed
/// stores (via the HTM hooks or direct onCommittedStore calls), CLWB
/// scheduling, drains, spontaneous evictions, direct persists and crashes.
/// Installed with PMemPool::setObserver; PersistCheck (src/check/) builds
/// its persist-state machine on top of this interface. Callbacks may run
/// concurrently from any thread and may be invoked while pool-internal
/// locks are held, so implementations must be self-synchronizing and must
/// never call back into the pool or the HTM runtime.
class PMemObserver {
public:
  virtual ~PMemObserver();

  /// A committed (post-HTM or non-transactional) store of the word at
  /// \p Addr. \p ValuesKnown is true when \p OldVal / \p NewVal carry the
  /// word's content before/after the store; legacy onCommittedStore(Addr)
  /// callers report ValuesKnown = false.
  virtual void onStore(void *Addr, uint64_t OldVal, uint64_t NewVal,
                       bool ValuesKnown) = 0;
  /// CLWB of the line containing \p Addr scheduled by \p ThreadId.
  virtual void onClwb(uint32_t ThreadId, const void *Addr) = 0;
  /// \p ThreadId's pending CLWBs completed. \p Remote is false for the
  /// thread's own SFENCE (explicit drain or an HTM commit fence) and true
  /// for another thread's drainRemote, which asserts completion by the
  /// passage of time and makes no claim about \p ThreadId's own
  /// store/flush ordering.
  virtual void onDrain(uint32_t ThreadId, bool Remote) = 0;
  /// Tracked mode: the line containing \p LineAddr was spontaneously
  /// written back (seeded evictor or evictRandomLines).
  virtual void onEvict(const void *LineAddr) = 0;
  /// [Addr, Addr + Len) was written straight to the persistent image and
  /// the volatile view (persistDirect).
  virtual void onPersistDirect(const void *Addr, size_t Len) = 0;
  /// \p ThreadId queued \p Val for the persistent image word at \p Addr
  /// (persistImageWord; the checkpointer path -- volatile view untouched).
  virtual void onPersistImageWord(uint32_t ThreadId, const void *Addr,
                                  uint64_t Val) = 0;
  /// Every dirty line was persisted (flushEverything).
  virtual void onFlushEverything() = 0;
  /// Simulated power failure: volatile state reverted to the image and
  /// all pending CLWBs discarded.
  virtual void onCrash() = 0;
  /// The pool was reset to its pristine zeroed state.
  virtual void onReset() = 0;
};

/// The persistent-memory pool. See the file comment for the model.
class PMemPool {
public:
  explicit PMemPool(PMemConfig Config = PMemConfig());
  ~PMemPool();
  PMemPool(const PMemPool &) = delete;
  PMemPool &operator=(const PMemPool &) = delete;

  const PMemConfig &config() const { return Config; }
  uint8_t *base() { return Base; }
  size_t size() const { return Bytes; }

  /// True when the pool was constructed over an existing backing file
  /// (PMemConfig::BackingPath): the volatile view already holds the last
  /// persisted image and the owner should recover rather than format.
  bool attachedFromImage() const { return AttachedFromImage; }

  /// True if \p Addr lies inside the pool.
  bool contains(const void *Addr) const {
    auto P = reinterpret_cast<const uint8_t *>(Addr);
    return P >= Base && P < Base + Bytes;
  }

  /// Carves \p CarveBytes from the pool (setup-time bump allocation used
  /// to lay out logs, heaps and workload data). Fatal if exhausted.
  void *carve(size_t CarveBytes, size_t Align = CacheLineBytes);

  /// Bytes still available to carve.
  size_t remaining() const { return Bytes - CarveOffset; }

  /// Schedules a write-back (CLWB) of the cache line containing \p Addr,
  /// issued by \p ThreadId. Completion requires a drain by the same
  /// thread (explicitly or via an HTM commit fence). A repeat CLWB of a
  /// line already scheduled in the current flush epoch (since the
  /// thread's last drain) with no intervening store to it is coalesced
  /// into the in-flight write-back: an O(1) no-op that counts in
  /// PMemStats::ClwbCalls but not LinesScheduled. A line re-dirtied after
  /// its CLWB always re-arms (tracked per-line store generations; see
  /// DESIGN.md section 7.2 for the epoch rules).
  CRAFTY_FLUSH_API void clwb(uint32_t ThreadId, const void *Addr);

  /// Schedules write-backs for every line of [Addr, Addr + Len) under one
  /// queue-lock acquisition and one shared issue timestamp (the batched
  /// fast path; same coalescing rules as clwb).
  CRAFTY_FLUSH_API void clwbRange(uint32_t ThreadId, const void *Addr,
                                  size_t Len);

  /// Schedules write-backs for the lines containing each of \p Addrs[0 ..
  /// \p N) as one batch (one lock acquisition, one issue timestamp).
  /// Addresses may repeat and may alias lines freely; the pending-line
  /// filter coalesces duplicates.
  CRAFTY_FLUSH_API void clwbLines(uint32_t ThreadId,
                                  const void *const *Addrs, size_t N);

  /// Completes \p ThreadId's scheduled write-backs (SFENCE after CLWBs).
  /// Charges DrainLatencyNs if any work was pending.
  CRAFTY_DRAIN_API void drain(uint32_t ThreadId);

  /// Completes another thread's scheduled write-backs without latency.
  /// Models the hardware fact that CLWBs issued long ago have finished on
  /// their own: Section 5.2's forced commits rely on a delinquent
  /// thread's old flushes having reached NVM. Safe concurrently with the
  /// owner (scheduled lines may always persist early).
  void drainRemote(uint32_t ThreadId);

  /// clwbRange followed by drain: a full persist operation.
  CRAFTY_DRAIN_API void persist(uint32_t ThreadId, const void *Addr,
                                size_t Len) {
    clwbRange(ThreadId, Addr, Len);
    drain(ThreadId);
  }

  /// Returns MemoryHooks wiring this pool into an HtmRuntime.
  MemoryHooks htmHooks();

  /// Installs (or, with nullptr, removes) the persistence-event observer.
  /// Not thread-safe: install before transactions run, remove after they
  /// quiesce. Near-zero cost when no observer is installed (one branch
  /// per operation). Installing an observer enables per-line store
  /// generations (as Tracked mode always does) so coalescing never
  /// suppresses the onClwb of a line re-dirtied since its last flush.
  void setObserver(PMemObserver *Obs);
  PMemObserver *observer() const { return Observer; }

  /// Marks the line of a committed store dirty and possibly evicts it
  /// (Tracked mode). Called by the HTM write-back hook; also call it for
  /// any direct store to pool memory made outside transactions. The
  /// three-argument form additionally reports the word's before/after
  /// values to the observer (see PMemObserver::onStore).
  void onCommittedStore(void *Addr);
  void onCommittedStore(void *Addr, uint64_t OldVal, uint64_t NewVal);

  /// Writes \p Len bytes at \p Addr directly to the persistent image and
  /// the volatile view, bypassing the cache model. Used by recovery and
  /// setup. Not transactional.
  void persistDirect(void *Addr, const void *Src, size_t Len);

  /// Queues a logged word for the persistent image only, leaving the
  /// volatile view untouched: how the NV-HTM / DudeTM checkpointers write
  /// the NVM heap (a *separate* physical copy from the DRAM snapshot the
  /// program runs on) with values taken from the redo log. Costs like a
  /// CLWB; completion requires \p ThreadId's drain.
  CRAFTY_FLUSH_API void persistImageWord(uint32_t ThreadId, uint64_t *Addr,
                                         uint64_t Val);

  /// Batched persistImageWord: applies \p Writes[0 .. \p N) under one
  /// lock acquisition and one issue timestamp. Word order is preserved
  /// (a word written twice keeps last-write-wins), every word still
  /// reaches the observer, and ClwbCalls counts one request per word
  /// while LinesScheduled counts the batch's line-deduplicated flush
  /// traffic -- the same accounting the coalesced CLWB paths use.
  CRAFTY_FLUSH_API void persistImageWords(uint32_t ThreadId,
                                          const PMemWordWrite *Writes,
                                          size_t N);

  /// Tracked mode: copies up to \p MaxLines random dirty lines to the
  /// image. Test hook for adversarial persist orderings.
  void evictRandomLines(size_t MaxLines);

  /// Persists every dirty line (models writing back the entire cache).
  /// Used by on-demand immediate persistence. In LatencyOnly mode this
  /// just charges one drain latency.
  CRAFTY_DRAIN_API void flushEverything();

  /// flushEverything without the inline latency wait: the write-back
  /// delay is charged to \p ThreadId's pending-drain deadline instead,
  /// so the caller's next drain() pays whatever remains of it. A caller
  /// persisting several pools back to back can flush them all first and
  /// then drain them all -- the fixed latencies overlap instead of
  /// serializing, exactly like issuing all the CLWBs before one SFENCE.
  CRAFTY_DRAIN_DEFERRED void flushEverythingDeferred(uint32_t ThreadId);

  /// Tracked mode: simulates a power failure: the volatile view is
  /// replaced with the persistent image (every non-persisted store is
  /// lost) and all pending CLWBs and dirty state are discarded. The
  /// process keeps running; recovery code can then inspect and repair the
  /// pool as a real restart would.
  void crash();

  /// Tracked mode: returns a copy of the current persistent image.
  std::vector<uint8_t> imageSnapshot() const;

  /// Tracked mode: true if the line containing \p Addr has unpersisted
  /// data (dirty or pending).
  bool isLineDirty(const void *Addr) const;

  /// Statistics (reads are racy-but-monotonic; fine for reporting).
  PMemStats stats() const;

  /// Resets carve state, image, dirty state and statistics; the pool
  /// content is zeroed. Not thread-safe.
  void reset();

private:
  size_t lineIndex(const void *Addr) const {
    return (reinterpret_cast<const uint8_t *>(Addr) - Base) >>
           CacheLineShift;
  }
  void copyLineToImage(size_t Line);
  void committedStoreCommon(void *Addr);

  /// Pending-line filter entries per thread slot. Direct-mapped: a
  /// collision only forgets that a line is pending (re-arming it, which
  /// is always safe), never invents a pending line.
  static constexpr size_t FlushFilterSize = 1024; // Power of two.

  PMemConfig Config;
  size_t Bytes;
  size_t NumLines;
  PMemObserver *Observer = nullptr;
  uint8_t *Base = nullptr;
  /// Persistent image (Tracked mode only): either HeapImage or a
  /// MAP_SHARED file mapping (Config.BackingPath).
  uint8_t *Image = nullptr;
  std::unique_ptr<uint8_t[]> HeapImage;
  int BackingFd = -1;
  bool AttachedFromImage = false;
  std::unique_ptr<std::atomic<uint8_t>[]> Dirty;
  /// Coarse may-be-dirty bitmap over Dirty, one bit per line grouped 64
  /// lines per word, so flushEverything scans NumLines/64 words instead
  /// of every line. A set bit whose line is clean is self-cleaning (the
  /// scan drops it); a dirty line always has its bit set.
  std::unique_ptr<std::atomic<uint64_t>[]> DirtySummary;
  size_t DirtySummaryWords = 0;
  std::atomic<size_t> CarveOffset{0};

  /// One pending-line filter entry: line \p Line is armed in epoch
  /// \p Epoch, issued when the line's store generation was \p Gen.
  struct FilterEntry {
    uint64_t Epoch = 0; // 0 never matches (epochs start at 1).
    uint32_t Line = 0;
    uint32_t Gen = 0;
  };

  struct alignas(CacheLineBytes) ThreadSlot {
    /// Guards PendingLines/HasPending/PendingDeadline/EvictRng and the
    /// flush filter: the owner issues clwb/drain, but drainRemote, crash
    /// and reset may touch the queue from other threads.
    SpinLock Lock;
    std::vector<uint32_t> PendingLines CRAFTY_GUARDED_BY(Lock); // Tracked.
    bool HasPending CRAFTY_GUARDED_BY(Lock) = false;
    /// Completion time of the latest pending CLWB (monotonic ns).
    uint64_t PendingDeadline CRAFTY_GUARDED_BY(Lock) = 0;
    /// Current flush epoch; bumping it invalidates every filter entry in
    /// O(1). Starts at 1 so default-constructed entries never match.
    uint64_t Epoch CRAFTY_GUARDED_BY(Lock) = 1;
    /// Direct-mapped pending-line filter (see FilterEntry).
    std::unique_ptr<FilterEntry[]> Filter CRAFTY_GUARDED_BY(Lock);
    Rng EvictRng CRAFTY_GUARDED_BY(Lock);

    void lock() CRAFTY_ACQUIRE(Lock) { Lock.lock(); }
    void unlock() CRAFTY_RELEASE(Lock) { Lock.unlock(); }
  };

  /// Arms a write-back of the line containing \p Addr in \p Slot's queue,
  /// or coalesces it into an in-flight one (see clwb). Returns true when
  /// the line was armed (the caller then refreshes the issue deadline).
  /// The shared flushEverything body: writes back every dirty line but
  /// does not wait out the latency (callers either spin or defer it).
  void flushEverythingNoWait();

  bool armLineLocked(ThreadSlot &Slot, uint32_t ThreadId, const void *Addr)
      CRAFTY_REQUIRES(Slot.Lock);

  std::unique_ptr<ThreadSlot[]> Threads; // Config.MaxThreads slots.

  /// Per-line committed-store generations, maintained in Tracked mode and
  /// whenever an observer is installed; null otherwise (LatencyOnly with
  /// no observer, where nothing can observe a suppressed re-flush). The
  /// filter compares the generation captured at arm time so a re-dirtied
  /// line is never coalesced away.
  std::unique_ptr<std::atomic<uint32_t>[]> LineGen;

  std::atomic<uint64_t> ClwbCount{0};
  std::atomic<uint64_t> LineSchedCount{0};
  std::atomic<uint64_t> DrainCount{0};
  std::atomic<uint64_t> EmptyDrainCount{0};
  std::atomic<uint64_t> EvictCount{0};
};

} // namespace crafty

#endif // CRAFTY_PMEM_PMEMPOOL_H
