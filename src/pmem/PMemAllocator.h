//===- pmem/PMemAllocator.h - Allocator over persistent memory -*- C++ -*-===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A size-class allocator over a PMemPool with per-thread arenas, used by
/// workloads that allocate inside persistent transactions (B+tree nodes,
/// vacation reservations, ...). Per-thread arenas mean allocator calls
/// inside hardware transactions never conflict across threads.
///
/// The allocator's *metadata* (free lists, bump pointers) is volatile: the
/// paper's prototype likewise does not make allocator metadata crash
/// consistent (its Log phase logs malloc/free calls only so the Validate
/// phase can replay them; Section 6). Applications that must survive
/// crashes either carve static structures or rebuild allocator metadata
/// from their own persistent structures at recovery, as our crash tests
/// do.
///
/// Contrast with heap/DurableHeap.h, the *crash-consistent* allocator:
/// there the free-space bitmap itself lives in persistent memory and
/// every alloc/free mutates it inside a small Crafty transaction, so
/// recovery needs no rebuild scan -- the undo log rolls partial
/// allocations back and a tiny WAL reclaims staged-but-unpublished
/// extents. The two serve different regimes: this allocator is for
/// cache-line-sized nodes allocated *inside* transactions (speed,
/// HTM-friendliness); the page heap is for multi-KiB objects staged
/// *outside* transactions and published by pointer swing (capacity,
/// leak-freedom).
///
//===----------------------------------------------------------------------===//

#ifndef CRAFTY_PMEM_PMEMALLOCATOR_H
#define CRAFTY_PMEM_PMEMALLOCATOR_H

#include "pmem/PMemPool.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crafty {

/// Per-thread size-class allocator over a PMemPool region.
class PMemAllocator {
public:
  /// Creates arenas for \p NumThreads threads, each \p ArenaBytes large,
  /// carved from \p Pool.
  PMemAllocator(PMemPool &Pool, unsigned NumThreads, size_t ArenaBytes);
  PMemAllocator(const PMemAllocator &) = delete;
  PMemAllocator &operator=(const PMemAllocator &) = delete;

  /// Allocates \p Bytes (8-byte aligned) from \p ThreadId's arena.
  /// Returns nullptr when the arena is exhausted and no freed block fits.
  void *alloc(unsigned ThreadId, size_t Bytes);

  /// Returns \p Ptr (from alloc) to \p ThreadId's free lists.
  void dealloc(unsigned ThreadId, void *Ptr);

  /// Bytes currently handed out across all arenas.
  size_t bytesInUse() const;

private:
  static constexpr unsigned NumClasses = 12; // 16 B .. 32 KiB.
  static unsigned classFor(size_t Bytes);
  static size_t classSize(unsigned Class) { return (size_t)16 << Class; }

  struct Arena {
    uint8_t *Cursor = nullptr;
    uint8_t *End = nullptr;
    void *FreeLists[NumClasses] = {};
    size_t InUse = 0;
  };

  std::vector<Arena> Arenas;
};

} // namespace crafty

#endif // CRAFTY_PMEM_PMEMALLOCATOR_H
