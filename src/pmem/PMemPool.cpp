//===- pmem/PMemPool.cpp - Persistent-memory simulator --------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmem/PMemPool.h"

#include "support/Clock.h"
#include "support/Compiler.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace crafty;

static size_t roundUp(size_t N, size_t Align) {
  return (N + Align - 1) & ~(Align - 1);
}

PMemPool::PMemPool(PMemConfig Config) : Config(Config) {
  Bytes = roundUp(Config.PoolBytes, CacheLineBytes);
  NumLines = Bytes / CacheLineBytes;
  void *Mem = nullptr;
  if (posix_memalign(&Mem, CacheLineBytes, Bytes) != 0)
    fatalError("PMemPool: out of memory");
  Base = static_cast<uint8_t *>(Mem);
  std::memset(Base, 0, Bytes);
  if (Config.Mode == PMemMode::Tracked) {
    Image = std::make_unique<uint8_t[]>(Bytes);
    std::memset(Image.get(), 0, Bytes);
    Dirty = std::make_unique<std::atomic<uint8_t>[]>(NumLines);
    for (size_t I = 0; I != NumLines; ++I)
      Dirty[I].store(0, std::memory_order_relaxed);
  }
  Threads = std::make_unique<ThreadSlot[]>(Config.MaxThreads);
  for (unsigned I = 0; I != Config.MaxThreads; ++I) {
    ThreadSlot &Slot = Threads[I];
    Slot.lock(); // No concurrency yet; taken for the analysis' benefit.
    Slot.EvictRng.reseed(Config.EvictionSeed * 1315423911u + I);
    Slot.PendingLines.reserve(256);
    Slot.unlock();
  }
}

PMemObserver::~PMemObserver() = default;

PMemPool::~PMemPool() { std::free(Base); }

void *PMemPool::carve(size_t CarveBytes, size_t Align) {
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  size_t Cur = CarveOffset.load(std::memory_order_relaxed);
  for (;;) {
    size_t Aligned = roundUp(Cur, Align);
    size_t Next = Aligned + CarveBytes;
    if (Next > Bytes)
      fatalError("PMemPool: carve exhausted the pool");
    if (CarveOffset.compare_exchange_weak(Cur, Next,
                                          std::memory_order_relaxed))
      return Base + Aligned;
  }
}

void PMemPool::clwb(uint32_t ThreadId, const void *Addr) {
  assert(contains(Addr) && "clwb outside the pool");
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  ClwbCount.fetch_add(1, std::memory_order_relaxed);
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  if (Config.Mode == PMemMode::Tracked)
    Slot.PendingLines.push_back((uint32_t)lineIndex(Addr));
  Slot.HasPending = true;
  // The write-back completes asynchronously after the NVM round trip.
  if (Config.DrainLatencyNs)
    Slot.PendingDeadline = monotonicNanos() + Config.DrainLatencyNs;
  // Notified under the slot lock so the observer sees clwb/drain events
  // for one thread slot in their true order.
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onClwb(ThreadId, Addr);
  Slot.unlock();
}

void PMemPool::clwbRange(uint32_t ThreadId, const void *Addr, size_t Len) {
  if (Len == 0)
    return;
  uintptr_t First = lineOf(Addr);
  uintptr_t Last =
      lineOf(reinterpret_cast<const uint8_t *>(Addr) + Len - 1);
  for (uintptr_t Line = First; Line <= Last; Line += CacheLineBytes)
    clwb(ThreadId, reinterpret_cast<const void *>(Line));
}

void PMemPool::drain(uint32_t ThreadId) {
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  if (!Slot.HasPending) {
    Slot.unlock();
    return;
  }
  if (Config.Mode == PMemMode::Tracked) {
    for (uint32_t Line : Slot.PendingLines)
      copyLineToImage(Line);
    Slot.PendingLines.clear();
  }
  bool HadPending = Slot.HasPending;
  uint64_t Deadline = Slot.PendingDeadline;
  Slot.HasPending = false;
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onDrain(ThreadId, /*Remote=*/false);
  Slot.unlock();
  DrainCount.fetch_add(1, std::memory_order_relaxed);
  // SFENCE semantics: wait only for write-backs still in flight; CLWBs
  // issued long enough ago have already completed.
  if (HadPending && Config.DrainLatencyNs) {
    uint64_t Now = monotonicNanos();
    if (Now < Deadline)
      spinForNanos(Deadline - Now);
  }
}

void PMemPool::drainRemote(uint32_t ThreadId) {
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  if (Config.Mode == PMemMode::Tracked) {
    for (uint32_t Line : Slot.PendingLines)
      copyLineToImage(Line);
    Slot.PendingLines.clear();
  }
  Slot.HasPending = false;
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onDrain(ThreadId, /*Remote=*/true);
  Slot.unlock();
}

void PMemPool::copyLineToImage(size_t Line) {
  // Clear the dirty flag before copying: a racing store re-marks the line.
  Dirty[Line].store(0, std::memory_order_relaxed);
  auto *Src = reinterpret_cast<const uint64_t *>(Base + Line * CacheLineBytes);
  auto *Dst = reinterpret_cast<uint64_t *>(Image.get() + Line * CacheLineBytes);
  // Word-granular copies: NVM guarantees persistence at word granularity
  // (paper Section 5.2), so a line may land torn at word boundaries --
  // exactly the states recovery must tolerate.
  for (size_t W = 0; W != CacheLineBytes / 8; ++W) {
    uint64_t V = __atomic_load_n(Src + W, __ATOMIC_RELAXED);
    __atomic_store_n(Dst + W, V, __ATOMIC_RELAXED);
  }
}

namespace {
/// Per-thread eviction RNG: deterministic given thread creation order.
thread_local Rng *EvictionRngPtr = nullptr;
thread_local Rng EvictionRngStorage;
} // namespace

static std::atomic<uint64_t> EvictionThreadCounter{0};

void PMemPool::onCommittedStore(void *Addr) {
  if (CRAFTY_LIKELY(Observer == nullptr) && Config.Mode != PMemMode::Tracked)
    return;
  if (!contains(Addr))
    return;
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onStore(Addr, 0, 0, /*ValuesKnown=*/false);
  committedStoreCommon(Addr);
}

void PMemPool::onCommittedStore(void *Addr, uint64_t OldVal,
                                uint64_t NewVal) {
  if (CRAFTY_LIKELY(Observer == nullptr) && Config.Mode != PMemMode::Tracked)
    return;
  if (!contains(Addr))
    return;
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onStore(Addr, OldVal, NewVal, /*ValuesKnown=*/true);
  committedStoreCommon(Addr);
}

void PMemPool::committedStoreCommon(void *Addr) {
  if (Config.Mode != PMemMode::Tracked)
    return;
  size_t Line = lineIndex(Addr);
  Dirty[Line].store(1, std::memory_order_relaxed);
  if (Config.EvictionPerMillion == 0)
    return;
  if (!EvictionRngPtr) {
    EvictionRngStorage.reseed(
        Config.EvictionSeed +
        EvictionThreadCounter.fetch_add(1, std::memory_order_relaxed) * 7919);
    EvictionRngPtr = &EvictionRngStorage;
  }
  if (EvictionRngPtr->chance(Config.EvictionPerMillion, 1000000)) {
    copyLineToImage(Line);
    EvictCount.fetch_add(1, std::memory_order_relaxed);
    if (CRAFTY_UNLIKELY(Observer != nullptr))
      Observer->onEvict(Base + Line * CacheLineBytes);
  }
}

void PMemPool::persistImageWord(uint32_t ThreadId, uint64_t *Addr,
                                uint64_t Val) {
  assert(contains(Addr) && "persistImageWord outside the pool");
  assert(isWordAligned(Addr) && "persistImageWord needs an aligned word");
  ClwbCount.fetch_add(1, std::memory_order_relaxed);
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  if (Config.Mode == PMemMode::Tracked) {
    size_t Off = reinterpret_cast<uint8_t *>(Addr) - Base;
    auto *Dst = reinterpret_cast<uint64_t *>(Image.get() + Off);
    __atomic_store_n(Dst, Val, __ATOMIC_RELAXED);
  }
  Slot.HasPending = true;
  if (Config.DrainLatencyNs)
    Slot.PendingDeadline = monotonicNanos() + Config.DrainLatencyNs;
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onPersistImageWord(ThreadId, Addr, Val);
  Slot.unlock();
}

void PMemPool::persistDirect(void *Addr, const void *Src, size_t Len) {
  assert(contains(Addr) && "persistDirect outside the pool");
  std::memcpy(Addr, Src, Len);
  if (Config.Mode == PMemMode::Tracked) {
    size_t Off = reinterpret_cast<uint8_t *>(Addr) - Base;
    std::memcpy(Image.get() + Off, Src, Len);
  }
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onPersistDirect(Addr, Len);
}

void PMemPool::evictRandomLines(size_t MaxLines) {
  if (Config.Mode != PMemMode::Tracked)
    return;
  if (!EvictionRngPtr) {
    EvictionRngStorage.reseed(
        Config.EvictionSeed +
        EvictionThreadCounter.fetch_add(1, std::memory_order_relaxed) * 7919);
    EvictionRngPtr = &EvictionRngStorage;
  }
  for (size_t I = 0; I != MaxLines; ++I) {
    size_t Line = EvictionRngPtr->nextBounded(NumLines);
    if (Dirty[Line].load(std::memory_order_relaxed)) {
      copyLineToImage(Line);
      EvictCount.fetch_add(1, std::memory_order_relaxed);
      if (CRAFTY_UNLIKELY(Observer != nullptr))
        Observer->onEvict(Base + Line * CacheLineBytes);
    }
  }
}

void PMemPool::flushEverything() {
  if (Config.Mode == PMemMode::Tracked) {
    for (size_t Line = 0; Line != NumLines; ++Line)
      if (Dirty[Line].load(std::memory_order_relaxed)) {
        copyLineToImage(Line);
        EvictCount.fetch_add(1, std::memory_order_relaxed);
      }
  }
  DrainCount.fetch_add(1, std::memory_order_relaxed);
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onFlushEverything();
  spinForNanos(Config.DrainLatencyNs);
}

void PMemPool::crash() {
  if (Config.Mode != PMemMode::Tracked)
    fatalError("PMemPool::crash requires Tracked mode");
  // Callers must have quiesced all threads (a real crash stops the world).
  std::memcpy(Base, Image.get(), Bytes);
  for (size_t I = 0; I != NumLines; ++I)
    Dirty[I].store(0, std::memory_order_relaxed);
  for (unsigned I = 0; I != Config.MaxThreads; ++I) {
    ThreadSlot &Slot = Threads[I];
    Slot.lock();
    Slot.PendingLines.clear();
    Slot.HasPending = false;
    Slot.unlock();
  }
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onCrash();
}

std::vector<uint8_t> PMemPool::imageSnapshot() const {
  if (Config.Mode != PMemMode::Tracked)
    fatalError("PMemPool::imageSnapshot requires Tracked mode");
  return std::vector<uint8_t>(Image.get(), Image.get() + Bytes);
}

bool PMemPool::isLineDirty(const void *Addr) const {
  if (Config.Mode != PMemMode::Tracked)
    return false;
  return Dirty[lineIndex(Addr)].load(std::memory_order_relaxed) != 0;
}

PMemStats PMemPool::stats() const {
  PMemStats S;
  S.Clwbs = ClwbCount.load(std::memory_order_relaxed);
  S.DrainsWithWork = DrainCount.load(std::memory_order_relaxed);
  S.EvictedLines = EvictCount.load(std::memory_order_relaxed);
  return S;
}

void PMemPool::reset() {
  std::memset(Base, 0, Bytes);
  CarveOffset.store(0, std::memory_order_relaxed);
  if (Config.Mode == PMemMode::Tracked) {
    std::memset(Image.get(), 0, Bytes);
    for (size_t I = 0; I != NumLines; ++I)
      Dirty[I].store(0, std::memory_order_relaxed);
  }
  for (unsigned I = 0; I != Config.MaxThreads; ++I) {
    ThreadSlot &Slot = Threads[I];
    Slot.lock();
    Slot.PendingLines.clear();
    Slot.HasPending = false;
    Slot.unlock();
  }
  ClwbCount.store(0, std::memory_order_relaxed);
  DrainCount.store(0, std::memory_order_relaxed);
  EvictCount.store(0, std::memory_order_relaxed);
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onReset();
}

static void hookOnStore(void *Ctx, void *Addr, uint64_t OldVal,
                        uint64_t NewVal) {
  static_cast<PMemPool *>(Ctx)->onCommittedStore(Addr, OldVal, NewVal);
}

static void hookOnCommitFence(void *Ctx, uint32_t ThreadId) {
  static_cast<PMemPool *>(Ctx)->drain(ThreadId);
}

MemoryHooks PMemPool::htmHooks() {
  MemoryHooks Hooks;
  Hooks.Ctx = this;
  Hooks.OnStore = hookOnStore;
  Hooks.OnCommitFence = hookOnCommitFence;
  return Hooks;
}
