//===- pmem/PMemPool.cpp - Persistent-memory simulator --------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmem/PMemPool.h"

#include "support/Clock.h"
#include "support/Compiler.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace crafty;

static size_t roundUp(size_t N, size_t Align) {
  return (N + Align - 1) & ~(Align - 1);
}

PMemPool::PMemPool(PMemConfig Config) : Config(Config) {
  Bytes = roundUp(Config.PoolBytes, CacheLineBytes);
  NumLines = Bytes / CacheLineBytes;
  void *Mem = nullptr;
  if (posix_memalign(&Mem, CacheLineBytes, Bytes) != 0)
    fatalError("PMemPool: out of memory");
  Base = static_cast<uint8_t *>(Mem);
  std::memset(Base, 0, Bytes);
  if (Config.Mode == PMemMode::Tracked) {
    if (!Config.BackingPath.empty()) {
      // File-backed image: attach when the file already exists with the
      // right geometry, create-and-zero otherwise.
      BackingFd = ::open(Config.BackingPath.c_str(), O_RDWR | O_CREAT |
                         O_CLOEXEC, 0644);
      if (BackingFd < 0)
        fatalError("PMemPool: cannot open the image backing file");
      struct stat St;
      if (fstat(BackingFd, &St) != 0)
        fatalError("PMemPool: cannot stat the image backing file");
      if (St.st_size == 0) {
        if (ftruncate(BackingFd, (off_t)Bytes) != 0)
          fatalError("PMemPool: cannot size the image backing file");
      } else if ((size_t)St.st_size == Bytes) {
        AttachedFromImage = true;
      } else {
        fatalError("PMemPool: image backing file size does not match the "
                   "pool geometry");
      }
      void *Map = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                       BackingFd, 0);
      if (Map == MAP_FAILED)
        fatalError("PMemPool: cannot map the image backing file");
      Image = static_cast<uint8_t *>(Map);
      if (AttachedFromImage) {
        // The volatile view a restarted machine sees is exactly the
        // persisted image: every unflushed line died with the old cache.
        std::memcpy(Base, Image, Bytes);
      }
    } else {
      HeapImage = std::make_unique<uint8_t[]>(Bytes);
      Image = HeapImage.get();
      std::memset(Image, 0, Bytes);
    }
    Dirty = std::make_unique<std::atomic<uint8_t>[]>(NumLines);
    for (size_t I = 0; I != NumLines; ++I)
      Dirty[I].store(0, std::memory_order_relaxed);
    DirtySummaryWords = (NumLines + 63) / 64;
    DirtySummary = std::make_unique<std::atomic<uint64_t>[]>(DirtySummaryWords);
    for (size_t I = 0; I != DirtySummaryWords; ++I)
      DirtySummary[I].store(0, std::memory_order_relaxed);
  } else if (!Config.BackingPath.empty()) {
    fatalError("PMemPool: BackingPath requires Tracked mode");
  }
  if (Config.Mode == PMemMode::Tracked)
    LineGen = std::make_unique<std::atomic<uint32_t>[]>(NumLines);
  Threads = std::make_unique<ThreadSlot[]>(Config.MaxThreads);
  for (unsigned I = 0; I != Config.MaxThreads; ++I) {
    ThreadSlot &Slot = Threads[I];
    Slot.lock(); // No concurrency yet; taken for the analysis' benefit.
    Slot.EvictRng.reseed(Config.EvictionSeed * 1315423911u + I);
    Slot.PendingLines.reserve(256);
    Slot.Filter = std::make_unique<FilterEntry[]>(FlushFilterSize);
    Slot.unlock();
  }
}

void PMemPool::setObserver(PMemObserver *Obs) {
  if (Obs && !LineGen)
    LineGen = std::make_unique<std::atomic<uint32_t>[]>(NumLines);
  Observer = Obs;
}

PMemObserver::~PMemObserver() = default;

PMemPool::~PMemPool() {
  if (Image && !HeapImage)
    munmap(Image, Bytes);
  if (BackingFd >= 0)
    ::close(BackingFd);
  std::free(Base);
}

void *PMemPool::carve(size_t CarveBytes, size_t Align) {
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  size_t Cur = CarveOffset.load(std::memory_order_relaxed);
  for (;;) {
    size_t Aligned = roundUp(Cur, Align);
    size_t Next = Aligned + CarveBytes;
    if (Next > Bytes)
      fatalError("PMemPool: carve exhausted the pool");
    if (CarveOffset.compare_exchange_weak(Cur, Next,
                                          std::memory_order_relaxed))
      return Base + Aligned;
  }
}

bool PMemPool::armLineLocked(ThreadSlot &Slot, uint32_t ThreadId,
                             const void *Addr) {
  uint32_t Line = (uint32_t)lineIndex(Addr);
  uint32_t Gen =
      LineGen ? LineGen[Line].load(std::memory_order_relaxed) : 0;
  FilterEntry &E = Slot.Filter[Line & (FlushFilterSize - 1)];
  // Coalesce: the line is already in flight this epoch and nothing stored
  // to it since (generation unchanged), so the pending write-back already
  // covers its content.
  if (E.Epoch == Slot.Epoch && E.Line == Line && E.Gen == Gen)
    return false;
  E.Epoch = Slot.Epoch;
  E.Line = Line;
  E.Gen = Gen;
  LineSchedCount.fetch_add(1, std::memory_order_relaxed);
  if (Config.Mode == PMemMode::Tracked) {
    if (Config.EagerWriteback)
      copyLineToImage(Line);
    else
      Slot.PendingLines.push_back(Line);
  }
  Slot.HasPending = true;
  // Notified under the slot lock so the observer sees clwb/drain events
  // for one thread slot in their true order. Coalesced repeats are not
  // reported: with an observer installed the generation check guarantees
  // a suppressed CLWB is indistinguishable from the armed one it joins.
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onClwb(ThreadId, Addr);
  return true;
}

void PMemPool::clwb(uint32_t ThreadId, const void *Addr) {
  assert(contains(Addr) && "clwb outside the pool");
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  ClwbCount.fetch_add(1, std::memory_order_relaxed);
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  // The write-back completes asynchronously after the NVM round trip.
  if (armLineLocked(Slot, ThreadId, Addr) && Config.DrainLatencyNs)
    Slot.PendingDeadline = monotonicNanos() + Config.DrainLatencyNs;
  Slot.unlock();
}

void PMemPool::clwbRange(uint32_t ThreadId, const void *Addr, size_t Len) {
  if (Len == 0)
    return;
  assert(contains(Addr) && "clwbRange outside the pool");
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  uintptr_t First = lineOf(Addr);
  uintptr_t Last =
      lineOf(reinterpret_cast<const uint8_t *>(Addr) + Len - 1);
  assert(contains(reinterpret_cast<const void *>(Last)) &&
         "clwbRange end outside the pool");
  ClwbCount.fetch_add((Last - First) / CacheLineBytes + 1,
                      std::memory_order_relaxed);
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  bool Armed = false;
  for (uintptr_t Line = First; Line <= Last; Line += CacheLineBytes)
    Armed |=
        armLineLocked(Slot, ThreadId, reinterpret_cast<const void *>(Line));
  // One issue timestamp for the whole batch: the lines are in flight
  // together, so the batch shares a single NVM round-trip deadline.
  if (Armed && Config.DrainLatencyNs)
    Slot.PendingDeadline = monotonicNanos() + Config.DrainLatencyNs;
  Slot.unlock();
}

void PMemPool::clwbLines(uint32_t ThreadId, const void *const *Addrs,
                         size_t N) {
  if (N == 0)
    return;
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  ClwbCount.fetch_add(N, std::memory_order_relaxed);
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  bool Armed = false;
  for (size_t I = 0; I != N; ++I) {
    assert(contains(Addrs[I]) && "clwbLines address outside the pool");
    Armed |= armLineLocked(Slot, ThreadId, Addrs[I]);
  }
  if (Armed && Config.DrainLatencyNs)
    Slot.PendingDeadline = monotonicNanos() + Config.DrainLatencyNs;
  Slot.unlock();
}

void PMemPool::drain(uint32_t ThreadId) {
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  DrainCount.fetch_add(1, std::memory_order_relaxed);
  if (!Slot.HasPending) {
    // Free on hardware too: SFENCE with no CLWBs in flight. No epoch bump
    // needed -- arming is what sets HasPending, so an empty queue implies
    // no live filter entries in the current epoch.
    EmptyDrainCount.fetch_add(1, std::memory_order_relaxed);
    Slot.unlock();
    return;
  }
  if (Config.Mode == PMemMode::Tracked) {
    // Under EagerWriteback the lines were copied at CLWB issue time and
    // PendingLines stayed empty; the drain then only pays the fence.
    for (uint32_t Line : Slot.PendingLines)
      copyLineToImage(Line);
    Slot.PendingLines.clear();
  }
  uint64_t Deadline = Slot.PendingDeadline;
  Slot.HasPending = false;
  // New flush epoch: every pending-line filter entry is invalidated in
  // O(1), so the next CLWB of any line re-arms a fresh write-back.
  ++Slot.Epoch;
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onDrain(ThreadId, /*Remote=*/false);
  Slot.unlock();
  // SFENCE semantics: wait only for write-backs still in flight; CLWBs
  // issued long enough ago have already completed.
  if (Config.DrainLatencyNs) {
    uint64_t Now = monotonicNanos();
    if (Now < Deadline)
      spinForNanos(Deadline - Now);
  }
}

void PMemPool::drainRemote(uint32_t ThreadId) {
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  if (Config.Mode == PMemMode::Tracked) {
    for (uint32_t Line : Slot.PendingLines)
      copyLineToImage(Line);
    Slot.PendingLines.clear();
  }
  Slot.HasPending = false;
  ++Slot.Epoch; // Invalidate the owner's coalescing filter.
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onDrain(ThreadId, /*Remote=*/true);
  Slot.unlock();
}

void PMemPool::copyLineToImage(size_t Line) {
  // Clear the dirty flag before copying: a racing store re-marks the line.
  Dirty[Line].store(0, std::memory_order_relaxed);
  auto *Src = reinterpret_cast<const uint64_t *>(Base + Line * CacheLineBytes);
  auto *Dst = reinterpret_cast<uint64_t *>(Image + Line * CacheLineBytes);
  // Word-granular copies: NVM guarantees persistence at word granularity
  // (paper Section 5.2), so a line may land torn at word boundaries --
  // exactly the states recovery must tolerate.
  for (size_t W = 0; W != CacheLineBytes / 8; ++W) {
    uint64_t V = __atomic_load_n(Src + W, __ATOMIC_RELAXED);
    __atomic_store_n(Dst + W, V, __ATOMIC_RELAXED);
  }
}

namespace {
/// Per-thread eviction RNG: deterministic given thread creation order.
thread_local Rng *EvictionRngPtr = nullptr;
thread_local Rng EvictionRngStorage;
} // namespace

static std::atomic<uint64_t> EvictionThreadCounter{0};

void PMemPool::onCommittedStore(void *Addr) {
  if (CRAFTY_LIKELY(Observer == nullptr) && Config.Mode != PMemMode::Tracked)
    return;
  if (!contains(Addr))
    return;
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onStore(Addr, 0, 0, /*ValuesKnown=*/false);
  committedStoreCommon(Addr);
}

void PMemPool::onCommittedStore(void *Addr, uint64_t OldVal,
                                uint64_t NewVal) {
  if (CRAFTY_LIKELY(Observer == nullptr) && Config.Mode != PMemMode::Tracked)
    return;
  if (!contains(Addr))
    return;
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onStore(Addr, OldVal, NewVal, /*ValuesKnown=*/true);
  committedStoreCommon(Addr);
}

void PMemPool::committedStoreCommon(void *Addr) {
  size_t Line = lineIndex(Addr);
  // Bump the line's store generation first: any CLWB already armed for
  // this line no longer covers its content, so the coalescing filter must
  // let the next flush of it through.
  if (LineGen)
    LineGen[Line].fetch_add(1, std::memory_order_relaxed);
  if (Config.Mode != PMemMode::Tracked)
    return;
  Dirty[Line].store(1, std::memory_order_relaxed);
  // Publish to the coarse summary only when the bit is not already set:
  // the common case (a hot line re-dirtied within one barrier window) is
  // then a single relaxed load with no write traffic.
  std::atomic<uint64_t> &Word = DirtySummary[Line >> 6];
  uint64_t Bit = 1ull << (Line & 63);
  if (!(Word.load(std::memory_order_relaxed) & Bit))
    Word.fetch_or(Bit, std::memory_order_relaxed);
  if (Config.EvictionPerMillion == 0)
    return;
  if (!EvictionRngPtr) {
    EvictionRngStorage.reseed(
        Config.EvictionSeed +
        EvictionThreadCounter.fetch_add(1, std::memory_order_relaxed) * 7919);
    EvictionRngPtr = &EvictionRngStorage;
  }
  if (EvictionRngPtr->chance(Config.EvictionPerMillion, 1000000)) {
    copyLineToImage(Line);
    EvictCount.fetch_add(1, std::memory_order_relaxed);
    if (CRAFTY_UNLIKELY(Observer != nullptr))
      Observer->onEvict(Base + Line * CacheLineBytes);
  }
}

void PMemPool::persistImageWord(uint32_t ThreadId, uint64_t *Addr,
                                uint64_t Val) {
  PMemWordWrite W{Addr, Val};
  persistImageWords(ThreadId, &W, 1);
}

void PMemPool::persistImageWords(uint32_t ThreadId,
                                 const PMemWordWrite *Writes, size_t N) {
  if (N == 0)
    return;
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  ClwbCount.fetch_add(N, std::memory_order_relaxed);
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  // Image-only word persists never touch the CLWB coalescing filter: a
  // suppressed entry there would drop a volatile->image copy outright.
  // Consecutive same-line words still count as one scheduled write-back
  // (the checkpointer applies its log in address-sorted runs).
  size_t PrevLine = SIZE_MAX;
  uint64_t Scheduled = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t *Addr = Writes[I].Addr;
    assert(contains(Addr) && "persistImageWord outside the pool");
    assert(isWordAligned(Addr) && "persistImageWord needs an aligned word");
    if (Config.Mode == PMemMode::Tracked) {
      size_t Off = reinterpret_cast<uint8_t *>(Addr) - Base;
      auto *Dst = reinterpret_cast<uint64_t *>(Image + Off);
      __atomic_store_n(Dst, Writes[I].Val, __ATOMIC_RELAXED);
    }
    size_t Line = lineIndex(Addr);
    if (Line != PrevLine) {
      ++Scheduled;
      PrevLine = Line;
    }
    if (CRAFTY_UNLIKELY(Observer != nullptr))
      Observer->onPersistImageWord(ThreadId, Addr, Writes[I].Val);
  }
  LineSchedCount.fetch_add(Scheduled, std::memory_order_relaxed);
  Slot.HasPending = true;
  if (Config.DrainLatencyNs)
    Slot.PendingDeadline = monotonicNanos() + Config.DrainLatencyNs;
  Slot.unlock();
}

void PMemPool::persistDirect(void *Addr, const void *Src, size_t Len) {
  assert(contains(Addr) && "persistDirect outside the pool");
  std::memcpy(Addr, Src, Len);
  if (Config.Mode == PMemMode::Tracked) {
    size_t Off = reinterpret_cast<uint8_t *>(Addr) - Base;
    std::memcpy(Image + Off, Src, Len);
  }
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onPersistDirect(Addr, Len);
}

void PMemPool::evictRandomLines(size_t MaxLines) {
  if (Config.Mode != PMemMode::Tracked)
    return;
  if (!EvictionRngPtr) {
    EvictionRngStorage.reseed(
        Config.EvictionSeed +
        EvictionThreadCounter.fetch_add(1, std::memory_order_relaxed) * 7919);
    EvictionRngPtr = &EvictionRngStorage;
  }
  for (size_t I = 0; I != MaxLines; ++I) {
    size_t Line = EvictionRngPtr->nextBounded(NumLines);
    if (Dirty[Line].load(std::memory_order_relaxed)) {
      copyLineToImage(Line);
      EvictCount.fetch_add(1, std::memory_order_relaxed);
      if (CRAFTY_UNLIKELY(Observer != nullptr))
        Observer->onEvict(Base + Line * CacheLineBytes);
    }
  }
}

void PMemPool::flushEverything() {
  flushEverythingNoWait();
  spinForNanos(Config.DrainLatencyNs);
}

void PMemPool::flushEverythingDeferred(uint32_t ThreadId) {
  assert(ThreadId < Config.MaxThreads && "thread id out of range");
  flushEverythingNoWait();
  if (!Config.DrainLatencyNs)
    return;
  // Arm the caller's drain deadline in place of the inline wait. Any
  // existing deadline was set earlier, so "now + latency" never shortens
  // the wait already owed.
  ThreadSlot &Slot = Threads[ThreadId];
  Slot.lock();
  Slot.HasPending = true;
  Slot.PendingDeadline = monotonicNanos() + Config.DrainLatencyNs;
  Slot.unlock();
}

void PMemPool::flushEverythingNoWait() {
  if (Config.Mode == PMemMode::Tracked) {
    // Scan the coarse summary, not every line: a persist barrier right
    // after another one (or over a lightly-written pool) touches only the
    // words that saw stores. A store racing with the exchange re-sets its
    // bit and is picked up by the next barrier -- same ordering contract
    // as the per-line scan (concurrent stores are unordered vs the
    // barrier either way).
    for (size_t W = 0; W != DirtySummaryWords; ++W) {
      if (!DirtySummary[W].load(std::memory_order_relaxed))
        continue;
      uint64_t Bits = DirtySummary[W].exchange(0, std::memory_order_relaxed);
      while (Bits) {
        size_t Line = W * 64 + (size_t)__builtin_ctzll(Bits);
        Bits &= Bits - 1;
        if (Dirty[Line].load(std::memory_order_relaxed)) {
          copyLineToImage(Line);
          EvictCount.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  DrainCount.fetch_add(1, std::memory_order_relaxed);
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onFlushEverything();
}

void PMemPool::crash() {
  if (Config.Mode != PMemMode::Tracked)
    fatalError("PMemPool::crash requires Tracked mode");
  // Callers must have quiesced all threads (a real crash stops the world).
  std::memcpy(Base, Image, Bytes);
  for (size_t I = 0; I != NumLines; ++I)
    Dirty[I].store(0, std::memory_order_relaxed);
  for (size_t I = 0; I != DirtySummaryWords; ++I)
    DirtySummary[I].store(0, std::memory_order_relaxed);
  for (unsigned I = 0; I != Config.MaxThreads; ++I) {
    ThreadSlot &Slot = Threads[I];
    Slot.lock();
    Slot.PendingLines.clear();
    Slot.HasPending = false;
    ++Slot.Epoch; // Discarded CLWBs must not coalesce post-crash repeats.
    Slot.unlock();
  }
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onCrash();
}

std::vector<uint8_t> PMemPool::imageSnapshot() const {
  if (Config.Mode != PMemMode::Tracked)
    fatalError("PMemPool::imageSnapshot requires Tracked mode");
  return std::vector<uint8_t>(Image, Image + Bytes);
}

bool PMemPool::isLineDirty(const void *Addr) const {
  if (Config.Mode != PMemMode::Tracked)
    return false;
  return Dirty[lineIndex(Addr)].load(std::memory_order_relaxed) != 0;
}

PMemStats PMemPool::stats() const {
  PMemStats S;
  S.ClwbCalls = ClwbCount.load(std::memory_order_relaxed);
  S.LinesScheduled = LineSchedCount.load(std::memory_order_relaxed);
  S.Drains = DrainCount.load(std::memory_order_relaxed);
  S.EmptyDrains = EmptyDrainCount.load(std::memory_order_relaxed);
  S.EvictedLines = EvictCount.load(std::memory_order_relaxed);
  return S;
}

void PMemPool::reset() {
  std::memset(Base, 0, Bytes);
  CarveOffset.store(0, std::memory_order_relaxed);
  if (Config.Mode == PMemMode::Tracked) {
    std::memset(Image, 0, Bytes);
    for (size_t I = 0; I != NumLines; ++I)
      Dirty[I].store(0, std::memory_order_relaxed);
    for (size_t I = 0; I != DirtySummaryWords; ++I)
      DirtySummary[I].store(0, std::memory_order_relaxed);
  }
  if (LineGen)
    for (size_t I = 0; I != NumLines; ++I)
      LineGen[I].store(0, std::memory_order_relaxed);
  for (unsigned I = 0; I != Config.MaxThreads; ++I) {
    ThreadSlot &Slot = Threads[I];
    Slot.lock();
    Slot.PendingLines.clear();
    Slot.HasPending = false;
    ++Slot.Epoch; // Invalidate filter entries from before the reset.
    Slot.unlock();
  }
  ClwbCount.store(0, std::memory_order_relaxed);
  LineSchedCount.store(0, std::memory_order_relaxed);
  DrainCount.store(0, std::memory_order_relaxed);
  EmptyDrainCount.store(0, std::memory_order_relaxed);
  EvictCount.store(0, std::memory_order_relaxed);
  if (CRAFTY_UNLIKELY(Observer != nullptr))
    Observer->onReset();
}

static void hookOnStore(void *Ctx, void *Addr, uint64_t OldVal,
                        uint64_t NewVal) {
  static_cast<PMemPool *>(Ctx)->onCommittedStore(Addr, OldVal, NewVal);
}

static void hookOnCommitFence(void *Ctx, uint32_t ThreadId) {
  static_cast<PMemPool *>(Ctx)->drain(ThreadId);
}

MemoryHooks PMemPool::htmHooks() {
  MemoryHooks Hooks;
  Hooks.Ctx = this;
  Hooks.OnStore = hookOnStore;
  Hooks.OnCommitFence = hookOnCommitFence;
  return Hooks;
}
