//===- bench/checker_overhead.cpp - Dynamic checker overhead --------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark measurement of the PersistCheck and TxRaceCheck
// overhead on micro_ops-style transaction workloads. Each benchmark runs
// with all four checker combinations (Arg bitmask: bit 0 = PersistCheck,
// bit 1 = TxRaceCheck) so the enabled/disabled throughput ratio is read
// straight off one report. The checkers are debugging tools -- the
// interesting numbers are the "off" fast path (one predicted branch per
// event) and the order of magnitude of the "on" slowdown, not absolute
// throughput.
//
//===----------------------------------------------------------------------===//

#include "check/PersistCheck.h"
#include "check/TxRaceCheck.h"
#include "core/Crafty.h"

#include "benchmark/benchmark.h"

#include <string>
#include <thread>
#include <vector>

using namespace crafty;

namespace {

CraftyConfig checkerConfig(int64_t Mask, unsigned Threads) {
  CraftyConfig CC;
  CC.NumThreads = Threads;
  CC.EnablePersistCheck = (Mask & 1) != 0;
  CC.EnableTxRaceCheck = (Mask & 2) != 0;
  return CC;
}

std::string checkerLabel(int64_t Mask) {
  switch (Mask) {
  case 0:
    return "checkers off";
  case 1:
    return "persistcheck";
  case 2:
    return "txracecheck";
  default:
    return "persistcheck+txracecheck";
  }
}

PMemConfig benchPoolConfig() {
  PMemConfig PC;
  PC.PoolBytes = 64 << 20;
  // Tracked mode so PersistCheck sees real line state; zero drain latency
  // so the measured delta is checker bookkeeping, not emulated NVM.
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  return PC;
}

/// One writing transaction, bank profile (10 writes), single thread.
void BM_TxnUnderCheckers(benchmark::State &State) {
  PMemPool Pool(benchPoolConfig());
  HtmRuntime Htm((HtmConfig()));
  CraftyRuntime Rt(Pool, Htm, checkerConfig(State.range(0), 1));
  auto *Data = static_cast<uint64_t *>(Rt.carve(16 * CacheLineBytes));
  uint64_t I = 0;
  for (auto _ : State) {
    ++I;
    Rt.run(0, [&](TxnContext &Tx) {
      for (unsigned W = 0; W != 10; ++W)
        Tx.store(&Data[W * 8], I + W);
    });
  }
  State.SetLabel(checkerLabel(State.range(0)));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TxnUnderCheckers)->DenseRange(0, 3, 1)->Unit(
    benchmark::kMicrosecond);

/// Read-only transaction: the checkers' cheapest transactional path.
void BM_ReadOnlyTxnUnderCheckers(benchmark::State &State) {
  PMemPool Pool(benchPoolConfig());
  HtmRuntime Htm((HtmConfig()));
  CraftyRuntime Rt(Pool, Htm, checkerConfig(State.range(0), 1));
  auto *Data = static_cast<uint64_t *>(Rt.carve(16 * CacheLineBytes));
  for (auto _ : State) {
    uint64_t Sum = 0;
    Rt.run(0, [&](TxnContext &Tx) {
      for (unsigned W = 0; W != 10; ++W)
        Sum += Tx.load(&Data[W * 8]);
    });
    benchmark::DoNotOptimize(Sum);
  }
  State.SetLabel(checkerLabel(State.range(0)));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ReadOnlyTxnUnderCheckers)
    ->DenseRange(0, 3, 1)
    ->Unit(benchmark::kMicrosecond);

/// Contended 4-thread counter increments: the checkers serialize their
/// event streams on one mutex, so contention is their worst case.
void BM_ContendedTxnsUnderCheckers(benchmark::State &State) {
  constexpr unsigned NumThreads = 4;
  constexpr uint64_t OpsPerThread = 400;
  PMemPool Pool(benchPoolConfig());
  HtmRuntime Htm((HtmConfig()));
  CraftyRuntime Rt(Pool, Htm, checkerConfig(State.range(0), NumThreads));
  auto *Counter = static_cast<uint64_t *>(Rt.carve(64));
  for (auto _ : State) {
    std::vector<std::thread> Threads;
    Threads.reserve(NumThreads);
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        for (uint64_t I = 0; I != OpsPerThread; ++I)
          Rt.run(T, [&](TxnContext &Tx) {
            Tx.store(Counter, Tx.load(Counter) + 1);
          });
      });
    for (auto &Th : Threads)
      Th.join();
  }
  State.SetLabel(checkerLabel(State.range(0)));
  State.SetItemsProcessed(State.iterations() * NumThreads * OpsPerThread);
}
BENCHMARK(BM_ContendedTxnsUnderCheckers)
    ->DenseRange(0, 3, 1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
