//===- bench/phase_breakdown.cpp - Crafty phase-time breakdown ------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Where does a Crafty persistent transaction's time go? For each workload
// and thread count, the wall-clock share of the Log / Redo / Validate /
// SGL phases (including aborted attempts). Complements the appendix's
// outcome-count breakdowns (Figures 9-21) with timing, which the paper
// discusses qualitatively ("the Redo phase is often short and can execute
// concurrently with Log and Validate phases").
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

using namespace crafty;

int main() {
  std::printf("Crafty phase-time breakdown (share of total phase time; "
              "includes aborted attempts)\n");
  std::printf("%-26s %4s %8s %8s %8s %8s %10s\n", "workload", "t", "log%",
              "redo%", "valid%", "sgl%", "ns/txn");
  for (WorkloadKind Kind :
       {WorkloadKind::BankHigh, WorkloadKind::BankNone,
        WorkloadKind::BTreeInsert, WorkloadKind::KMeansHigh,
        WorkloadKind::VacationLow, WorkloadKind::Ssca2,
        WorkloadKind::Labyrinth, WorkloadKind::Intruder}) {
    std::unique_ptr<Workload> Named = createWorkload(Kind);
    for (unsigned T : {1u, 4u, 16u}) {
      ExperimentConfig C;
      C.Workload = Kind;
      C.System = SystemKind::Crafty;
      C.Threads = T;
      C.OpsPerThread = defaultOpsPerThread(Kind);
      C.CollectPhaseTimings = true;
      ExperimentResult R = runExperiment(C);
      double Total = (double)(R.Txn.LogPhaseNs + R.Txn.RedoPhaseNs +
                              R.Txn.ValidatePhaseNs + R.Txn.SglNs);
      if (Total <= 0 || R.Txn.transactions() == 0)
        continue;
      std::printf("%-26s %4u %7.1f%% %7.1f%% %7.1f%% %7.1f%% %10.0f\n",
                  Named->name(), T, 100.0 * R.Txn.LogPhaseNs / Total,
                  100.0 * R.Txn.RedoPhaseNs / Total,
                  100.0 * R.Txn.ValidatePhaseNs / Total,
                  100.0 * R.Txn.SglNs / Total,
                  Total / (double)R.Txn.transactions());
      std::fflush(stdout);
    }
  }
  return 0;
}
