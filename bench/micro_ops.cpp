//===- bench/micro_ops.cpp - Microbenchmarks of the building blocks -------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the individual mechanisms: emulated
// hardware-transaction operations, undo-log encoding, persist operations
// at both emulated latencies, one full persistent transaction on each
// system, and a recovery scan. These quantify the constants behind the
// figure-level results.
//
//===----------------------------------------------------------------------===//

#include "baselines/Factory.h"
#include "core/Crafty.h"
#include "log/LogEntry.h"
#include "recovery/Recovery.h"

#include "benchmark/benchmark.h"

using namespace crafty;

namespace {

void BM_HtmReadOnlyTxn(benchmark::State &State) {
  HtmRuntime Rt((HtmConfig()));
  HtmTx Tx(Rt, 0);
  alignas(64) static uint64_t Data[64];
  for (auto _ : State) {
    TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
      uint64_t Sum = 0;
      for (unsigned I = 0; I != 8; ++I)
        Sum += T.load(&Data[I * 8]);
      benchmark::DoNotOptimize(Sum);
    });
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_HtmReadOnlyTxn);

void BM_HtmWritingTxn(benchmark::State &State) {
  HtmRuntime Rt((HtmConfig()));
  HtmTx Tx(Rt, 0);
  alignas(64) static uint64_t Data[64 * 8];
  int64_t Writes = State.range(0);
  for (auto _ : State) {
    TxResult R = runHtmTx(Tx, [&](HtmTx &T) {
      for (int64_t I = 0; I != Writes; ++I)
        T.store(&Data[I * 8], (uint64_t)I);
    });
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * Writes);
}
BENCHMARK(BM_HtmWritingTxn)->Arg(1)->Arg(8)->Arg(32);

void BM_NonTxStore(benchmark::State &State) {
  HtmRuntime Rt((HtmConfig()));
  alignas(64) static uint64_t Word;
  uint64_t V = 0;
  for (auto _ : State)
    Rt.nonTxStore(&Word, ++V);
}
BENCHMARK(BM_NonTxStore);

void BM_UndoEntryEncodeDecode(benchmark::State &State) {
  alignas(8) static uint64_t Var;
  uint64_t Addr = reinterpret_cast<uint64_t>(&Var);
  uint64_t V = 0;
  for (auto _ : State) {
    ++V;
    EncodedEntry E = encodeDataEntry(Addr, V, V & 1);
    DecodedEntry D = decodeEntry(E.AddrWord, E.ValWord);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_UndoEntryEncodeDecode);

void BM_PersistOp(benchmark::State &State) {
  PMemConfig PC;
  PC.PoolBytes = 1 << 20;
  PC.DrainLatencyNs = (uint64_t)State.range(0);
  PMemPool Pool(PC);
  auto *W = static_cast<uint64_t *>(Pool.carve(64));
  for (auto _ : State)
    Pool.persist(0, W, 8);
}
BENCHMARK(BM_PersistOp)->Arg(0)->Arg(100)->Arg(300);

void BM_OneTransaction(benchmark::State &State) {
  SystemKind Kind = (SystemKind)State.range(0);
  PMemConfig PC;
  PC.PoolBytes = 64 << 20;
  PC.DrainLatencyNs = 300;
  PMemPool Pool(PC);
  HtmRuntime Htm((HtmConfig()));
  BackendOptions BO;
  BO.NumThreads = 1;
  std::unique_ptr<PtmBackend> Backend = createBackend(Kind, Pool, Htm, BO);
  auto *Data = static_cast<uint64_t *>(Pool.carve(16 * CacheLineBytes));
  uint64_t I = 0;
  for (auto _ : State) {
    ++I;
    Backend->run(0, [&](TxnContext &Tx) {
      for (unsigned W = 0; W != 10; ++W) // Bank-profile: 10 writes.
        Tx.store(&Data[W * 8], I + W);
    });
  }
  State.SetLabel(systemKindName(Kind));
  Backend->quiesce();
}
BENCHMARK(BM_OneTransaction)
    ->DenseRange(0, 5, 1)
    ->Iterations(20000) // Bounded: the durable baselines' redo logs are
                        // finite (no truncation support).
    ->Unit(benchmark::kMicrosecond);

void BM_RecoveryScan(benchmark::State &State) {
  PMemConfig PC;
  PC.PoolBytes = 32 << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  PMemPool Pool(PC);
  HtmRuntime Htm((HtmConfig()));
  CraftyConfig CC;
  CC.NumThreads = 2;
  CraftyRuntime Rt(Pool, Htm, CC);
  auto *Data = static_cast<uint64_t *>(Rt.carve(64 * CacheLineBytes));
  for (int I = 0; I != 1000; ++I)
    Rt.run(0, [&](TxnContext &Tx) {
      for (unsigned W = 0; W != 8; ++W)
        Tx.store(&Data[W * 8], (uint64_t)I + W);
    });
  std::vector<uint8_t> Image = Pool.imageSnapshot();
  for (auto _ : State) {
    RecoveryObserver Obs(Image.data(), Image.size());
    auto Seqs = Obs.scanSequences();
    benchmark::DoNotOptimize(Seqs);
  }
  State.SetLabel("sequences over a 2x16Ki-entry log");
}
BENCHMARK(BM_RecoveryScan)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
