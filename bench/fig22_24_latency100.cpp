//===- bench/fig22_24_latency100.cpp - Figures 22-24 reproduction ---------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the appendix latency-sensitivity study (Figures 22-24): the
// Figure 6-8 sweeps with 100 ns emulated NVM write-back latency, the
// expected cost if the NVM controller's buffer is part of the persistence
// domain (paper Section 2.2).
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

using namespace crafty;

int main() {
  std::printf("Figures 22-24: all workloads at 100 ns drain latency\n");
  for (WorkloadKind Kind : AllWorkloads) {
    SweepOptions O;
    O.Workload = Kind;
    O.DrainLatencyNs = 100;
    runThroughputSweep(O, stdout);
  }
  return 0;
}
