//===- bench/fig7_btree.cpp - Figure 7 reproduction -----------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 7: throughput on the B+tree microbenchmark, insert
// only and mixed lookup/insert/remove, 300 ns emulated NVM latency.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

using namespace crafty;

int main() {
  std::printf("Figure 7: B+tree microbenchmark, 300 ns drain\n");
  for (WorkloadKind Kind :
       {WorkloadKind::BTreeInsert, WorkloadKind::BTreeMixed}) {
    SweepOptions O;
    O.Workload = Kind;
    runThroughputSweep(O, stdout);
  }
  return 0;
}
