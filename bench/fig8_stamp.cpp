//===- bench/fig8_stamp.cpp - Figure 8 reproduction -----------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 8: throughput on the STAMP-style kernels (kmeans
// high/low, vacation high/low, labyrinth, ssca2, genome, intruder),
// 300 ns emulated NVM latency.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

using namespace crafty;

int main() {
  std::printf("Figure 8: STAMP-style kernels, 300 ns drain\n");
  for (WorkloadKind Kind :
       {WorkloadKind::KMeansHigh, WorkloadKind::KMeansLow,
        WorkloadKind::VacationHigh, WorkloadKind::VacationLow,
        WorkloadKind::Labyrinth, WorkloadKind::Ssca2, WorkloadKind::Genome,
        WorkloadKind::Intruder}) {
    SweepOptions O;
    O.Workload = Kind;
    runThroughputSweep(O, stdout);
  }
  return 0;
}
