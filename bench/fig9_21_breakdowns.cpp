//===- bench/fig9_21_breakdowns.cpp - Figures 9-21 reproduction -----------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the appendix breakdowns (Figures 9-21): for every workload
// and thread count, how each persistent transaction completed (Non-Crafty
// / Read Only / Redo / Validate / SGL) and the outcome of every hardware
// transaction (Commit / Conflict / Capacity / Explicit / Zero).
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

using namespace crafty;

int main() {
  std::printf("Figures 9-21: persistent- and hardware-transaction "
              "breakdowns (appendix)\n");
  for (WorkloadKind Kind : AllWorkloads) {
    SweepOptions O;
    O.Workload = Kind;
    O.PrintBreakdowns = true;
    // The appendix figures accompany the 300 ns runs; breakdowns are
    // latency independent, so run at 0 ns to keep the sweep fast.
    O.DrainLatencyNs = 0;
    runThroughputSweep(O, stdout);
  }
  return 0;
}
