//===- bench/kv_loadgen.cpp - KV service load generator -------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Load generator and crash auditor for the src/kv/ service.
//
// Bench mode (default): for each cell of {backend} x {shard count} x
// {SET batch size}, fork a KvServer child process, drive it over loopback
// TCP with M concurrent connections running a read/write mix, and record
// ops/s plus request-latency p50/p99. Points append into BENCH_kv.json
// with the same trajectory conventions as BENCH_hotpath.json (schema
// header + points array; --append splices, CRAFTY_BENCH_OPS_SCALE scales
// the op counts).
//
//   {"schema": "crafty-kv-bench-v1", "points": [
//     {"label": ..., "ops_scale": ..., "results": [
//       {"system": ..., "shards": N, "conns": M, "batch": B,
//        "read_pct": P, "value_bytes": V, "ops": N,
//        "ops_per_sec": X, "p50_us": X, "p99_us": X}, ...]}, ...]}
//
// Crash mode (--crash-after N): fork a file-backed Crafty server, drive
// write-heavy load, SIGKILL the server after N acknowledged writes,
// restart it over the same data directory (attach + undo-log replay),
// and audit the recovered state against per-connection ledgers:
//
//  - every ACKNOWLEDGED write must be present: each key must hold a
//    value at least as new as the last acked write to it (the keyspace is
//    partitioned across connections, so per-key write order is total);
//  - every UNACKNOWLEDGED write must be absent-or-complete: a key may
//    hold any value from the unacked suffix of its write sequence,
//    byte-for-byte complete -- never a torn or fabricated value.
//
// Usage: kv_loadgen [--label NAME] [--append FILE | --out FILE]
//                   [--ops N] [--conns M] [--value-bytes V]
//                   [--read-pct P] [--keyspace K]
//                   [--crash-after N] [--datadir DIR]
//
//===----------------------------------------------------------------------===//

#include "kv/KvClient.h"
#include "kv/KvServer.h"
#include "support/Clock.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <signal.h>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace crafty;
using namespace crafty::kv;

namespace {

struct Options {
  std::string Label = "unlabeled";
  std::string OutPath, AppendPath;
  uint64_t OpsPerCell = 20000;
  unsigned Conns = 4;
  size_t ValueBytes = 64;
  unsigned ReadPct = 50;
  uint64_t Keyspace = 8192;
  uint64_t CrashAfter = 0; // 0 = bench mode.
  std::string DataDir;
};

struct BenchCell {
  SystemKind System;
  unsigned Shards;
  size_t Batch;
};

const BenchCell Cells[] = {
    {SystemKind::Crafty, 1, 1},     {SystemKind::Crafty, 1, 8},
    {SystemKind::Crafty, 4, 1},     {SystemKind::Crafty, 4, 8},
    {SystemKind::NvHtm, 1, 1},      {SystemKind::NvHtm, 1, 8},
    {SystemKind::NvHtm, 4, 1},      {SystemKind::NvHtm, 4, 8},
    {SystemKind::NonDurable, 1, 1}, {SystemKind::NonDurable, 1, 8},
    {SystemKind::NonDurable, 4, 1}, {SystemKind::NonDurable, 4, 8},
};

struct CellResult {
  const char *SystemName;
  unsigned Shards;
  unsigned Conns;
  size_t Batch;
  unsigned ReadPct;
  size_t ValueBytes;
  uint64_t Ops;
  double OpsPerSec;
  double P50Us;
  double P99Us;
};

double opsScale() {
  if (const char *Scale = std::getenv("CRAFTY_BENCH_OPS_SCALE")) {
    double F = std::atof(Scale);
    if (F > 0)
      return F;
  }
  return 1.0;
}

KvConfig storeConfig(SystemKind System, unsigned Shards,
                     const std::string &DataDir) {
  KvConfig KC;
  KC.NumShards = Shards;
  KC.SlotsPerShard = 1 << 14;
  KC.Backend = System;
  // Each server worker owns Tid = worker index on every shard.
  KC.ThreadsPerShard = Shards;
  KC.DataDir = DataDir;
  return KC;
}

//===----------------------------------------------------------------------===//
// Forked server lifecycle
//===----------------------------------------------------------------------===//

struct ServerProc {
  pid_t Pid = -1;
  uint16_t Port = 0;
  int CtlWrite = -1; // Closing it asks the child to shut down cleanly.
};

/// Forks a child that serves \p Cfg; the child reports its port over a
/// pipe and runs until the control pipe closes (or it is killed).
ServerProc spawnServer(const KvConfig &Cfg) {
  int PortPipe[2], CtlPipe[2];
  if (pipe(PortPipe) != 0 || pipe(CtlPipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (Pid == 0) {
    close(PortPipe[0]);
    close(CtlPipe[1]);
    {
      KvStore Store(Cfg);
      KvServer Server(Store, KvServerConfig{});
      Server.start();
      char Msg[16];
      int N = std::snprintf(Msg, sizeof(Msg), "%u\n", Server.port());
      if (write(PortPipe[1], Msg, (size_t)N) != N)
        _exit(1);
      close(PortPipe[1]);
      // Serve until the parent closes the control pipe (or SIGKILLs us,
      // which is the whole point of crash mode).
      char Junk;
      while (read(CtlPipe[0], &Junk, 1) > 0)
        ;
      Server.stop();
    }
    _exit(0);
  }
  close(PortPipe[1]);
  close(CtlPipe[0]);
  ServerProc P;
  P.Pid = Pid;
  P.CtlWrite = CtlPipe[1];
  std::string PortStr;
  char C;
  while (read(PortPipe[0], &C, 1) == 1 && C != '\n')
    PortStr += C;
  close(PortPipe[0]);
  P.Port = (uint16_t)std::atoi(PortStr.c_str());
  if (P.Port == 0) {
    std::fprintf(stderr, "kv_loadgen: server child failed to start\n");
    std::exit(1);
  }
  return P;
}

void stopServer(ServerProc &P) {
  if (P.CtlWrite >= 0)
    close(P.CtlWrite);
  P.CtlWrite = -1;
  if (P.Pid > 0) {
    int St = 0;
    waitpid(P.Pid, &St, 0);
    P.Pid = -1;
  }
}

void killServer(ServerProc &P) {
  if (P.Pid > 0) {
    kill(P.Pid, SIGKILL);
    int St = 0;
    waitpid(P.Pid, &St, 0);
    P.Pid = -1;
  }
  if (P.CtlWrite >= 0)
    close(P.CtlWrite);
  P.CtlWrite = -1;
}

//===----------------------------------------------------------------------===//
// Bench mode
//===----------------------------------------------------------------------===//

std::string makeValue(uint64_t Key, uint64_t Seq, size_t Bytes) {
  char Head[64];
  int N = std::snprintf(Head, sizeof(Head), "k%llu-s%llu-",
                        (unsigned long long)Key, (unsigned long long)Seq);
  std::string V(Head, (size_t)N);
  // Deterministic tail derived from (key, seq): a torn or cross-wired
  // value cannot also have a consistent tail.
  uint64_t X = Key * 0x9e3779b97f4a7c15ull + Seq;
  while (V.size() < Bytes) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    V += (char)('a' + (X % 26));
  }
  V.resize(Bytes);
  return V;
}

CellResult runBenchCell(const Options &Opt, const BenchCell &Cell,
                        uint64_t Ops) {
  ServerProc Server = spawnServer(storeConfig(Cell.System, Cell.Shards, ""));

  std::atomic<uint64_t> OpsIssued{0};
  std::atomic<bool> Failed{false};
  std::vector<std::vector<double>> Lat(Opt.Conns);
  std::vector<std::thread> Threads;
  uint64_t T0 = monotonicNanos();
  for (unsigned T = 0; T != Opt.Conns; ++T) {
    Threads.emplace_back([&, T] {
      KvClient Client;
      if (!Client.connect(Server.Port)) {
        Failed.store(true);
        return;
      }
      Rng R(0x9e3779b9u + T * 1013904223u);
      std::vector<std::pair<uint64_t, std::string>> Pairs;
      std::vector<uint64_t> Keys;
      std::vector<KvStatus> Statuses;
      uint64_t Seq = 0;
      while (!Failed.load(std::memory_order_relaxed)) {
        // Claim a whole batch of ops so all cells do identical work.
        uint64_t Claim =
            OpsIssued.fetch_add(Cell.Batch, std::memory_order_relaxed);
        if (Claim >= Ops)
          break;
        bool IsRead = R.next() % 100 < Opt.ReadPct;
        uint64_t Start = monotonicNanos();
        bool Ok = true;
        if (IsRead) {
          if (Cell.Batch == 1) {
            std::string Out;
            KvStatus St = Client.get(R.next() % Opt.Keyspace, Out);
            Ok = St == KvStatus::Ok || St == KvStatus::NotFound;
          } else {
            Keys.clear();
            for (size_t I = 0; I != Cell.Batch; ++I)
              Keys.push_back(R.next() % Opt.Keyspace);
            std::vector<std::pair<KvStatus, std::string>> Out;
            Ok = Client.mget(Keys, Out);
          }
        } else {
          if (Cell.Batch == 1) {
            KvStatus St = Client.set(R.next() % Opt.Keyspace,
                                     makeValue(Claim, Seq, Opt.ValueBytes));
            Ok = St == KvStatus::Ok;
          } else {
            Pairs.clear();
            for (size_t I = 0; I != Cell.Batch; ++I)
              Pairs.emplace_back(R.next() % Opt.Keyspace,
                                 makeValue(Claim + I, Seq, Opt.ValueBytes));
            Ok = Client.mset(Pairs, Statuses);
            for (KvStatus St : Statuses)
              Ok = Ok && St == KvStatus::Ok;
          }
        }
        Lat[T].push_back((double)(monotonicNanos() - Start) / 1000.0);
        ++Seq;
        if (!Ok) {
          Failed.store(true);
          break;
        }
      }
      Client.quit();
    });
  }
  for (auto &Th : Threads)
    Th.join();
  uint64_t T1 = monotonicNanos();
  stopServer(Server);
  if (Failed.load()) {
    std::fprintf(stderr, "kv_loadgen: cell failed (%s shards=%u batch=%zu)\n",
                 systemKindName(Cell.System), Cell.Shards, Cell.Batch);
    std::exit(1);
  }

  std::vector<double> All;
  for (auto &L : Lat)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  auto Pct = [&](double P) {
    if (All.empty())
      return 0.0;
    size_t I = (size_t)((double)(All.size() - 1) * P);
    return All[I];
  };

  uint64_t Done = std::min<uint64_t>(OpsIssued.load(), Ops);
  CellResult R;
  R.SystemName = systemKindName(Cell.System);
  R.Shards = Cell.Shards;
  R.Conns = Opt.Conns;
  R.Batch = Cell.Batch;
  R.ReadPct = Opt.ReadPct;
  R.ValueBytes = Opt.ValueBytes;
  R.Ops = Done;
  R.OpsPerSec = T1 > T0 ? (double)Done * 1e9 / (double)(T1 - T0) : 0;
  R.P50Us = Pct(0.50);
  R.P99Us = Pct(0.99);
  return R;
}

std::string formatPoint(const std::string &Label, double Scale,
                        const std::vector<CellResult> &Results) {
  std::ostringstream Out;
  char Buf[320];
  Out << "    {\n      \"label\": \"" << Label << "\",\n";
  std::snprintf(Buf, sizeof(Buf), "      \"ops_scale\": %g,\n", Scale);
  Out << Buf << "      \"results\": [\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const CellResult &R = Results[I];
    std::snprintf(
        Buf, sizeof(Buf),
        "        {\"system\": \"%s\", \"shards\": %u, \"conns\": %u, "
        "\"batch\": %zu, \"read_pct\": %u, \"value_bytes\": %zu, "
        "\"ops\": %llu, \"ops_per_sec\": %.0f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f}%s\n",
        R.SystemName, R.Shards, R.Conns, R.Batch, R.ReadPct, R.ValueBytes,
        (unsigned long long)R.Ops, R.OpsPerSec, R.P50Us, R.P99Us,
        I + 1 == Results.size() ? "" : ",");
    Out << Buf;
  }
  Out << "      ]\n    }";
  return Out.str();
}

std::string trajectoryFile(const std::string &PointJson) {
  return std::string(
             "{\n  \"schema\": \"crafty-kv-bench-v1\",\n"
             "  \"unit\": \"ops_per_sec = completed key operations per "
             "second over loopback TCP; latencies per request\",\n"
             "  \"points\": [\n") +
         PointJson + "\n  ]\n}\n";
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Content;
  return Out.good();
}

bool appendPoint(const std::string &Path, const std::string &PointJson) {
  std::ifstream In(Path);
  if (!In.good())
    return writeFile(Path, trajectoryFile(PointJson));
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string File = Buf.str();
  const std::string Marker = "\n  ]\n}";
  size_t Pos = File.rfind(Marker);
  if (Pos == std::string::npos) {
    std::fprintf(stderr,
                 "kv_loadgen: %s does not look like a trajectory file\n",
                 Path.c_str());
    return false;
  }
  File.insert(Pos, ",\n" + PointJson);
  return writeFile(Path, File);
}

//===----------------------------------------------------------------------===//
// Crash mode
//===----------------------------------------------------------------------===//

/// One write in a connection's ledger. Acked flips once the OK response
/// arrives; writes the server never answered stay unacked.
struct LedgerEntry {
  uint64_t Key;
  std::string Val;
  bool Acked = false;
};

int runCrashAudit(const Options &Opt) {
  std::string DataDir = Opt.DataDir;
  if (DataDir.empty()) {
    char Tmpl[] = "/tmp/kv_loadgen.XXXXXX";
    if (!mkdtemp(Tmpl)) {
      std::perror("mkdtemp");
      return 1;
    }
    DataDir = Tmpl;
  }
  const unsigned Shards = 2;
  std::fprintf(stderr,
               "crash audit: datadir=%s shards=%u conns=%u target=%llu "
               "acked writes\n",
               DataDir.c_str(), Shards, Opt.Conns,
               (unsigned long long)Opt.CrashAfter);

  ServerProc Server =
      spawnServer(storeConfig(SystemKind::Crafty, Shards, DataDir));

  // Phase 1: write-heavy load until the kill threshold. The keyspace is
  // partitioned: connection T owns keys {T, T + Conns, T + 2*Conns, ...},
  // so each key's write order is one connection's FIFO.
  std::atomic<uint64_t> Acked{0};
  std::atomic<bool> Killed{false};
  std::vector<std::vector<LedgerEntry>> Ledgers(Opt.Conns);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Opt.Conns; ++T) {
    Threads.emplace_back([&, T] {
      KvClient Client;
      if (!Client.connect(Server.Port))
        return;
      Rng R(0xdecafbadu + T);
      uint64_t Seq = 0;
      while (!Killed.load(std::memory_order_relaxed)) {
        uint64_t Slot = R.next() % (Opt.Keyspace / Opt.Conns + 1);
        uint64_t Key = T + Slot * Opt.Conns;
        Ledgers[T].push_back(
            LedgerEntry{Key, makeValue(Key, Seq++, Opt.ValueBytes), false});
        LedgerEntry &E = Ledgers[T].back();
        KvStatus St = Client.set(Key, E.Val);
        if (St == KvStatus::Ok) {
          E.Acked = true;
          Acked.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Transport death (the kill) or a full shard; either way this
          // write is unacknowledged.
          break;
        }
      }
    });
  }
  while (Acked.load(std::memory_order_relaxed) < Opt.CrashAfter)
    std::this_thread::yield();
  killServer(Server);
  Killed.store(true);
  for (auto &Th : Threads)
    Th.join();
  uint64_t TotalAcked = Acked.load();
  std::fprintf(stderr, "crash audit: SIGKILLed server after %llu acked\n",
               (unsigned long long)TotalAcked);

  // Phase 2: restart over the same images; the store attaches and
  // replays every shard's undo log before serving.
  ServerProc Server2 =
      spawnServer(storeConfig(SystemKind::Crafty, Shards, DataDir));

  // Phase 3: audit. For each key, the recovered value must be a complete
  // value from the suffix of its write sequence starting at the last
  // acked write (acked-durability + absent-or-complete for the unacked
  // tail; rollback of a suffix of unacked writes is legal, losing an
  // acked one is not).
  KvClient Audit;
  if (!Audit.connect(Server2.Port)) {
    std::fprintf(stderr, "crash audit: cannot connect to restarted server\n");
    return 1;
  }
  uint64_t KeysAudited = 0, Violations = 0;
  for (unsigned T = 0; T != Opt.Conns; ++T) {
    // Per-key write sequences, in order.
    std::map<uint64_t, std::vector<const LedgerEntry *>> PerKey;
    for (const LedgerEntry &E : Ledgers[T])
      PerKey[E.Key].push_back(&E);
    for (const auto &[Key, Writes] : PerKey) {
      ++KeysAudited;
      size_t LastAcked = Writes.size();
      for (size_t I = Writes.size(); I-- > 0;)
        if (Writes[I]->Acked) {
          LastAcked = I;
          break;
        }
      std::string Got;
      KvStatus St = Audit.get(Key, Got);
      bool Ok;
      if (LastAcked == Writes.size()) {
        // Nothing acked: absent, or any complete unacked value.
        Ok = St == KvStatus::NotFound;
        if (!Ok && St == KvStatus::Ok)
          for (const LedgerEntry *W : Writes)
            Ok = Ok || W->Val == Got;
      } else {
        // Acked: must hold a value from the acked write or any later one.
        Ok = false;
        if (St == KvStatus::Ok)
          for (size_t I = LastAcked; I != Writes.size(); ++I)
            Ok = Ok || Writes[I]->Val == Got;
      }
      if (!Ok) {
        ++Violations;
        std::fprintf(stderr,
                     "  VIOLATION key=%llu status=%s got=%zu bytes "
                     "(last acked write %s)\n",
                     (unsigned long long)Key, kvStatusName(St), Got.size(),
                     LastAcked == Writes.size() ? "none" : "exists");
      }
    }
  }
  Audit.quit();
  stopServer(Server2);

  std::fprintf(stderr,
               "crash audit: %llu keys audited, %llu acked writes, "
               "%llu violations -> %s\n",
               (unsigned long long)KeysAudited,
               (unsigned long long)TotalAcked,
               (unsigned long long)Violations,
               Violations ? "FAILED" : "PASSED");
  return Violations ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  signal(SIGPIPE, SIG_IGN);
  Options Opt;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "kv_loadgen: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--label")
      Opt.Label = Next();
    else if (Arg == "--out")
      Opt.OutPath = Next();
    else if (Arg == "--append")
      Opt.AppendPath = Next();
    else if (Arg == "--ops")
      Opt.OpsPerCell = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--conns")
      Opt.Conns = (unsigned)std::atoi(Next());
    else if (Arg == "--value-bytes")
      Opt.ValueBytes = (size_t)std::atoi(Next());
    else if (Arg == "--read-pct")
      Opt.ReadPct = (unsigned)std::atoi(Next());
    else if (Arg == "--keyspace")
      Opt.Keyspace = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--crash-after")
      Opt.CrashAfter = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--datadir")
      Opt.DataDir = Next();
    else {
      std::fprintf(
          stderr,
          "usage: kv_loadgen [--label NAME] [--append FILE | --out FILE]\n"
          "                  [--ops N] [--conns M] [--value-bytes V]\n"
          "                  [--read-pct P] [--keyspace K]\n"
          "                  [--crash-after N] [--datadir DIR]\n");
      return 2;
    }
  }
  if (Opt.Conns == 0)
    Opt.Conns = 1;

  if (Opt.CrashAfter)
    return runCrashAudit(Opt);

  double Scale = opsScale();
  uint64_t Ops = (uint64_t)((double)Opt.OpsPerCell * Scale);
  if (Ops == 0)
    Ops = 1;
  std::vector<CellResult> Results;
  for (const BenchCell &Cell : Cells) {
    CellResult R = runBenchCell(Opt, Cell, Ops);
    std::fprintf(stderr,
                 "%-12s shards=%u batch=%zu  %9.0f ops/s  p50 %6.1fus  "
                 "p99 %6.1fus\n",
                 R.SystemName, R.Shards, R.Batch, R.OpsPerSec, R.P50Us,
                 R.P99Us);
    Results.push_back(R);
  }

  std::string Point = formatPoint(Opt.Label, Scale, Results);
  if (!Opt.AppendPath.empty()) {
    if (!appendPoint(Opt.AppendPath, Point))
      return 1;
    std::fprintf(stderr, "appended point '%s' to %s\n", Opt.Label.c_str(),
                 Opt.AppendPath.c_str());
  } else if (!Opt.OutPath.empty()) {
    if (!writeFile(Opt.OutPath, trajectoryFile(Point)))
      return 1;
    std::fprintf(stderr, "wrote %s\n", Opt.OutPath.c_str());
  } else {
    std::printf("%s\n", trajectoryFile(Point).c_str());
  }
  return 0;
}
