//===- bench/kv_loadgen.cpp - KV service load generator -------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Load generator and crash auditor for the src/kv/ service.
//
// Bench mode (default): for each cell of {backend} x {shard count} x
// {SET batch size}, fork a KvServer child process, drive it over loopback
// TCP with M concurrent connections running a read/write mix, and record
// ops/s plus request-latency p50/p99. Points append into BENCH_kv.json
// with the same trajectory conventions as BENCH_hotpath.json (schema
// header + points array; --append splices, CRAFTY_BENCH_OPS_SCALE scales
// the op counts).
//
//   {"schema": "crafty-kv-bench-v1", "points": [
//     {"label": ..., "ops_scale": ..., "results": [
//       {"system": ..., "shards": N, "conns": M, "batch": B,
//        "read_pct": P, "value_bytes": V, "ops": N,
//        "ops_per_sec": X, "p50_us": X, "p99_us": X,
//        "queue_wait_us_per_req": X, "execute_us_per_req": X,
//        "commit_wait_us_per_req": X, "barriers": N,
//        "barrier_us_per_call": X,
//        "shards_detail": [{"shard": S, "ops_per_sec": X,
//          "htm_commits": N, "htm_aborts": N, "clwb_calls": N,
//          "lines_scheduled": N, "drains": N, "empty_drains": N}, ...]},
//       ...]}, ...]}
//
// The per-request timing split and the per-shard counters come from the
// server's own STATS command, fetched once per cell after the load
// completes, so the numbers are the server's view (request arrival to
// execution start, time inside store transactions, execution end to
// group-commit release) rather than a client-side approximation.
//
// Large-value mode (--large-values): for each value size from 64 B to
// 64 KiB x {Crafty, NV-HTM, Non-durable}, drive the same read/write mix
// against a heap-enabled single-shard server. Values above the inline
// cell ceiling (248 B) route through the page-managed durable heap
// (heap/DurableHeap.h) via stage-then-publish, so the sweep measures
// the inline-vs-heap crossover and the heap pipeline's value-size
// envelope. Per-cell op counts scale down with value size to hold the
// byte volume roughly constant; the keyspace shrinks to 512 so the
// heap footprint stays bounded.
//
// --scaling-gate R turns the shard-scaling claim into an exit status:
// at the deepest batch size in the sweep (where group commit matters
// most and run-to-run noise matters least), Crafty 4-shard throughput
// must be at least R x its 1-shard throughput, or the run fails.
// --repeats K runs every cell K times against a fresh server and keeps
// the median-throughput sample; CI runs the gate with R = 0.8 and
// K = 3 (one-core runners timeslice the workers, so the gate bounds
// the cost of sharding rather than proving parallel speedup).
//
// Crash mode (--crash-after N): fork a file-backed Crafty server
// (--crash-shards, default 4, with one worker per shard), drive
// write-heavy load, SIGKILL the server after N acknowledged writes,
// restart it over the same data directory (attach + undo-log replay),
// and audit the recovered state against per-connection ledgers:
//
//  - every ACKNOWLEDGED write must be present: each key must hold a
//    value at least as new as the last acked write to it (the keyspace is
//    partitioned across connections, so per-key write order is total);
//  - every UNACKNOWLEDGED write must be absent-or-complete: a key may
//    hold any value from the unacked suffix of its write sequence,
//    byte-for-byte complete -- never a torn or fabricated value.
//
// Usage: kv_loadgen [--label NAME] [--append FILE | --out FILE]
//                   [--ops N] [--conns M] [--value-bytes V]
//                   [--read-pct P] [--keyspace K]
//                   [--crash-after N] [--datadir DIR]
//
//===----------------------------------------------------------------------===//

#include "heap/DurableHeap.h"
#include "kv/KvClient.h"
#include "kv/KvServer.h"
#include "support/Clock.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <signal.h>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace crafty;
using namespace crafty::kv;

namespace {

struct Options {
  std::string Label = "unlabeled";
  std::string OutPath, AppendPath;
  uint64_t OpsPerCell = 20000;
  unsigned Conns = 4;
  size_t ValueBytes = 64;
  unsigned ReadPct = 50;
  uint64_t Keyspace = 8192;
  uint64_t CrashAfter = 0;  // 0 = bench mode.
  unsigned CrashShards = 4; // Shard count for crash mode.
  unsigned Repeats = 1;     // Runs per cell; the median sample is kept.
  bool LargeValues = false; // Value-size sweep instead of the shard sweep.
  std::string DataDir;
  /// When > 0: fail the run unless Crafty 4-shard >= Gate x 1-shard
  /// ops/s at the deepest batch size in the sweep.
  double ScalingGate = 0;
};

struct BenchCell {
  SystemKind System;
  unsigned Shards;
  size_t Batch;
};

const BenchCell Cells[] = {
    {SystemKind::Crafty, 1, 1},     {SystemKind::Crafty, 1, 8},
    {SystemKind::Crafty, 4, 1},     {SystemKind::Crafty, 4, 8},
    {SystemKind::NvHtm, 1, 1},      {SystemKind::NvHtm, 1, 8},
    {SystemKind::NvHtm, 4, 1},      {SystemKind::NvHtm, 4, 8},
    {SystemKind::NonDurable, 1, 1}, {SystemKind::NonDurable, 1, 8},
    {SystemKind::NonDurable, 4, 1}, {SystemKind::NonDurable, 4, 8},
};

/// One shard's server-side counters for a bench cell.
struct ShardDetail {
  uint64_t Ops = 0;
  uint64_t HtmCommits = 0;
  uint64_t HtmAborts = 0;
  uint64_t ClwbCalls = 0;
  uint64_t LinesScheduled = 0;
  uint64_t Drains = 0;
  uint64_t EmptyDrains = 0;
};

struct CellResult {
  const char *SystemName;
  unsigned Shards;
  unsigned Conns;
  size_t Batch;
  unsigned ReadPct;
  size_t ValueBytes;
  uint64_t Ops;
  double OpsPerSec;
  double P50Us;
  double P99Us;
  double ElapsedSec = 0;
  // Server-side view (STATS command), summed over workers.
  uint64_t Requests = 0;
  uint64_t QueueWaitNs = 0;
  uint64_t ExecuteNs = 0;
  uint64_t CommitWaitNs = 0;
  uint64_t Barriers = 0;
  uint64_t BarrierNs = 0;
  std::vector<ShardDetail> PerShard;
};

/// Every integer value of `"Key":<digits>` in \p Json, in order. The
/// STATS document is emitted by our own server, so a scan beats a JSON
/// parser dependency; the trailing colon keeps "ops" from matching
/// "ops_per_shard".
std::vector<uint64_t> extractJsonInts(const std::string &Json,
                                      const std::string &Key) {
  std::vector<uint64_t> Out;
  std::string Needle = "\"" + Key + "\":";
  size_t Pos = 0;
  while ((Pos = Json.find(Needle, Pos)) != std::string::npos) {
    Pos += Needle.size();
    Out.push_back(std::strtoull(Json.c_str() + Pos, nullptr, 10));
  }
  return Out;
}

uint64_t sumInts(const std::vector<uint64_t> &V) {
  uint64_t S = 0;
  for (uint64_t X : V)
    S += X;
  return S;
}

/// Folds the server's STATS document into \p R. The document has a
/// workers section followed by a shards section; worker timing keys only
/// appear before "shards": and per-shard keys only after it.
void foldServerStats(const std::string &Json, CellResult &R) {
  size_t Split = Json.find("\"shards\":");
  if (Split == std::string::npos)
    return;
  std::string WorkersPart = Json.substr(0, Split);
  std::string ShardsPart = Json.substr(Split);
  R.Requests = sumInts(extractJsonInts(WorkersPart, "requests"));
  R.QueueWaitNs = sumInts(extractJsonInts(WorkersPart, "queue_wait_ns"));
  R.ExecuteNs = sumInts(extractJsonInts(WorkersPart, "execute_ns"));
  R.CommitWaitNs = sumInts(extractJsonInts(WorkersPart, "commit_wait_ns"));
  R.Barriers = sumInts(extractJsonInts(WorkersPart, "barriers"));
  R.BarrierNs = sumInts(extractJsonInts(WorkersPart, "barrier_ns"));
  std::vector<uint64_t> Ops = extractJsonInts(ShardsPart, "ops");
  std::vector<uint64_t> Commits = extractJsonInts(ShardsPart, "htm_commits");
  std::vector<uint64_t> Aborts = extractJsonInts(ShardsPart, "htm_aborts");
  std::vector<uint64_t> Clwb = extractJsonInts(ShardsPart, "clwb_calls");
  std::vector<uint64_t> Sched =
      extractJsonInts(ShardsPart, "lines_scheduled");
  std::vector<uint64_t> Drains = extractJsonInts(ShardsPart, "drains");
  std::vector<uint64_t> Empty = extractJsonInts(ShardsPart, "empty_drains");
  R.PerShard.resize(Ops.size());
  for (size_t S = 0; S != Ops.size(); ++S) {
    R.PerShard[S].Ops = Ops[S];
    if (S < Commits.size())
      R.PerShard[S].HtmCommits = Commits[S];
    if (S < Aborts.size())
      R.PerShard[S].HtmAborts = Aborts[S];
    if (S < Clwb.size())
      R.PerShard[S].ClwbCalls = Clwb[S];
    if (S < Sched.size())
      R.PerShard[S].LinesScheduled = Sched[S];
    if (S < Drains.size())
      R.PerShard[S].Drains = Drains[S];
    if (S < Empty.size())
      R.PerShard[S].EmptyDrains = Empty[S];
  }
}

double opsScale() {
  if (const char *Scale = std::getenv("CRAFTY_BENCH_OPS_SCALE")) {
    double F = std::atof(Scale);
    if (F > 0)
      return F;
  }
  return 1.0;
}

KvConfig storeConfig(SystemKind System, unsigned Shards,
                     const std::string &DataDir, size_t ValueBytes = 0,
                     uint64_t Keyspace = 0) {
  KvConfig KC;
  KC.NumShards = Shards;
  // Constant total capacity: the 1-shard vs N-shard comparison holds the
  // store size fixed and varies only the partitioning.
  KC.SlotsPerShard = (1 << 14) / Shards;
  KC.Backend = System;
  // Each server worker owns Tid = worker index on every shard; contexts
  // beyond the worker count would only add persist-barrier force work.
  KC.ThreadsPerShard = KvServer::autoWorkerCount(Shards);
  KC.DataDir = DataDir;
  if (ValueBytes > KC.MaxValueBytes) {
    // Values exceed the inline cell ceiling: size the durable heap for
    // the whole keyspace live at once, plus one overwrite generation
    // (freed extents stay barrier-deferred for up to a commit cycle)
    // and staging slack.
    size_t PagesPer = (ValueBytes + heap::DurableHeap::PageBytes - 1) /
                      heap::DurableHeap::PageBytes;
    size_t KeysPerShard = Keyspace / Shards + 1;
    KC.HeapPages = 2 * PagesPer * KeysPerShard + 256;
    KC.HeapWalSlots = 128;
  }
  return KC;
}

//===----------------------------------------------------------------------===//
// Forked server lifecycle
//===----------------------------------------------------------------------===//

struct ServerProc {
  pid_t Pid = -1;
  uint16_t Port = 0;
  int CtlWrite = -1; // Closing it asks the child to shut down cleanly.
};

/// Forks a child that serves \p Cfg; the child reports its port over a
/// pipe and runs until the control pipe closes (or it is killed).
ServerProc spawnServer(const KvConfig &Cfg) {
  int PortPipe[2], CtlPipe[2];
  if (pipe(PortPipe) != 0 || pipe(CtlPipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (Pid == 0) {
    close(PortPipe[0]);
    close(CtlPipe[1]);
    {
      KvStore Store(Cfg);
      KvServer Server(Store, KvServerConfig{});
      Server.start();
      char Msg[16];
      int N = std::snprintf(Msg, sizeof(Msg), "%u\n", Server.port());
      if (write(PortPipe[1], Msg, (size_t)N) != N)
        _exit(1);
      close(PortPipe[1]);
      // Serve until the parent closes the control pipe (or SIGKILLs us,
      // which is the whole point of crash mode).
      char Junk;
      while (read(CtlPipe[0], &Junk, 1) > 0)
        ;
      Server.stop();
    }
    _exit(0);
  }
  close(PortPipe[1]);
  close(CtlPipe[0]);
  ServerProc P;
  P.Pid = Pid;
  P.CtlWrite = CtlPipe[1];
  std::string PortStr;
  char C;
  while (read(PortPipe[0], &C, 1) == 1 && C != '\n')
    PortStr += C;
  close(PortPipe[0]);
  P.Port = (uint16_t)std::atoi(PortStr.c_str());
  if (P.Port == 0) {
    std::fprintf(stderr, "kv_loadgen: server child failed to start\n");
    std::exit(1);
  }
  return P;
}

void stopServer(ServerProc &P) {
  if (P.CtlWrite >= 0)
    close(P.CtlWrite);
  P.CtlWrite = -1;
  if (P.Pid > 0) {
    int St = 0;
    waitpid(P.Pid, &St, 0);
    P.Pid = -1;
  }
}

void killServer(ServerProc &P) {
  if (P.Pid > 0) {
    kill(P.Pid, SIGKILL);
    int St = 0;
    waitpid(P.Pid, &St, 0);
    P.Pid = -1;
  }
  if (P.CtlWrite >= 0)
    close(P.CtlWrite);
  P.CtlWrite = -1;
}

//===----------------------------------------------------------------------===//
// Bench mode
//===----------------------------------------------------------------------===//

std::string makeValue(uint64_t Key, uint64_t Seq, size_t Bytes) {
  char Head[64];
  int N = std::snprintf(Head, sizeof(Head), "k%llu-s%llu-",
                        (unsigned long long)Key, (unsigned long long)Seq);
  std::string V(Head, (size_t)N);
  // Deterministic tail derived from (key, seq): a torn or cross-wired
  // value cannot also have a consistent tail.
  uint64_t X = Key * 0x9e3779b97f4a7c15ull + Seq;
  while (V.size() < Bytes) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    V += (char)('a' + (X % 26));
  }
  V.resize(Bytes);
  return V;
}

CellResult runBenchCell(const Options &Opt, const BenchCell &Cell,
                        uint64_t Ops) {
  ServerProc Server = spawnServer(storeConfig(
      Cell.System, Cell.Shards, "", Opt.ValueBytes, Opt.Keyspace));

  std::atomic<uint64_t> OpsIssued{0};
  std::atomic<bool> Failed{false};
  std::vector<std::vector<double>> Lat(Opt.Conns);
  std::vector<std::thread> Threads;
  uint64_t T0 = monotonicNanos();
  for (unsigned T = 0; T != Opt.Conns; ++T) {
    Threads.emplace_back([&, T] {
      KvClient Client;
      if (!Client.connect(Server.Port)) {
        Failed.store(true);
        return;
      }
      Rng R(0x9e3779b9u + T * 1013904223u);
      std::vector<std::pair<uint64_t, std::string>> Pairs;
      std::vector<uint64_t> Keys;
      std::vector<KvStatus> Statuses;
      uint64_t Seq = 0;
      while (!Failed.load(std::memory_order_relaxed)) {
        // Claim a whole batch of ops so all cells do identical work.
        uint64_t Claim =
            OpsIssued.fetch_add(Cell.Batch, std::memory_order_relaxed);
        if (Claim >= Ops)
          break;
        bool IsRead = R.next() % 100 < Opt.ReadPct;
        uint64_t Start = monotonicNanos();
        bool Ok = true;
        if (IsRead) {
          if (Cell.Batch == 1) {
            std::string Out;
            KvStatus St = Client.get(R.next() % Opt.Keyspace, Out);
            Ok = St == KvStatus::Ok || St == KvStatus::NotFound;
          } else {
            Keys.clear();
            for (size_t I = 0; I != Cell.Batch; ++I)
              Keys.push_back(R.next() % Opt.Keyspace);
            std::vector<std::pair<KvStatus, std::string>> Out;
            Ok = Client.mget(Keys, Out);
          }
        } else {
          if (Cell.Batch == 1) {
            KvStatus St = Client.set(R.next() % Opt.Keyspace,
                                     makeValue(Claim, Seq, Opt.ValueBytes));
            Ok = St == KvStatus::Ok;
          } else {
            Pairs.clear();
            for (size_t I = 0; I != Cell.Batch; ++I)
              Pairs.emplace_back(R.next() % Opt.Keyspace,
                                 makeValue(Claim + I, Seq, Opt.ValueBytes));
            Ok = Client.mset(Pairs, Statuses);
            for (KvStatus St : Statuses)
              Ok = Ok && St == KvStatus::Ok;
          }
        }
        Lat[T].push_back((double)(monotonicNanos() - Start) / 1000.0);
        ++Seq;
        if (!Ok) {
          Failed.store(true);
          break;
        }
      }
      Client.quit();
    });
  }
  for (auto &Th : Threads)
    Th.join();
  uint64_t T1 = monotonicNanos();
  // Server-side counters for this cell, from the horse's mouth: fetched
  // after the load finishes so the document covers exactly this run.
  std::string StatsJson;
  {
    KvClient StatsClient;
    if (StatsClient.connect(Server.Port)) {
      StatsClient.stats(StatsJson);
      StatsClient.quit();
    }
  }
  stopServer(Server);
  if (Failed.load()) {
    std::fprintf(stderr, "kv_loadgen: cell failed (%s shards=%u batch=%zu)\n",
                 systemKindName(Cell.System), Cell.Shards, Cell.Batch);
    std::exit(1);
  }

  std::vector<double> All;
  for (auto &L : Lat)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  auto Pct = [&](double P) {
    if (All.empty())
      return 0.0;
    size_t I = (size_t)((double)(All.size() - 1) * P);
    return All[I];
  };

  uint64_t Done = std::min<uint64_t>(OpsIssued.load(), Ops);
  CellResult R;
  R.SystemName = systemKindName(Cell.System);
  R.Shards = Cell.Shards;
  R.Conns = Opt.Conns;
  R.Batch = Cell.Batch;
  R.ReadPct = Opt.ReadPct;
  R.ValueBytes = Opt.ValueBytes;
  R.Ops = Done;
  R.ElapsedSec = (double)(T1 - T0) / 1e9;
  R.OpsPerSec = T1 > T0 ? (double)Done * 1e9 / (double)(T1 - T0) : 0;
  R.P50Us = Pct(0.50);
  R.P99Us = Pct(0.99);
  foldServerStats(StatsJson, R);
  return R;
}

std::string formatPoint(const std::string &Label, double Scale,
                        const std::vector<CellResult> &Results) {
  std::ostringstream Out;
  char Buf[320];
  Out << "    {\n      \"label\": \"" << Label << "\",\n";
  std::snprintf(Buf, sizeof(Buf), "      \"ops_scale\": %g,\n", Scale);
  Out << Buf << "      \"results\": [\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const CellResult &R = Results[I];
    double PerReq = R.Requests ? 1.0 / (1000.0 * (double)R.Requests) : 0;
    std::snprintf(
        Buf, sizeof(Buf),
        "        {\"system\": \"%s\", \"shards\": %u, \"conns\": %u, "
        "\"batch\": %zu, \"read_pct\": %u, \"value_bytes\": %zu, "
        "\"ops\": %llu, \"ops_per_sec\": %.0f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f,\n",
        R.SystemName, R.Shards, R.Conns, R.Batch, R.ReadPct, R.ValueBytes,
        (unsigned long long)R.Ops, R.OpsPerSec, R.P50Us, R.P99Us);
    Out << Buf;
    std::snprintf(
        Buf, sizeof(Buf),
        "         \"queue_wait_us_per_req\": %.2f, "
        "\"execute_us_per_req\": %.2f, \"commit_wait_us_per_req\": %.2f, "
        "\"barriers\": %llu, \"barrier_us_per_call\": %.2f,\n",
        (double)R.QueueWaitNs * PerReq, (double)R.ExecuteNs * PerReq,
        (double)R.CommitWaitNs * PerReq, (unsigned long long)R.Barriers,
        R.Barriers ? (double)R.BarrierNs / (1000.0 * (double)R.Barriers)
                   : 0.0);
    Out << Buf << "         \"shards_detail\": [";
    for (size_t S = 0; S != R.PerShard.size(); ++S) {
      const ShardDetail &D = R.PerShard[S];
      std::snprintf(
          Buf, sizeof(Buf),
          "%s{\"shard\": %zu, \"ops_per_sec\": %.0f, "
          "\"htm_commits\": %llu, \"htm_aborts\": %llu, "
          "\"clwb_calls\": %llu, \"lines_scheduled\": %llu, "
          "\"drains\": %llu, \"empty_drains\": %llu}",
          S ? ",\n           " : "", S,
          R.ElapsedSec > 0 ? (double)D.Ops / R.ElapsedSec : 0.0,
          (unsigned long long)D.HtmCommits, (unsigned long long)D.HtmAborts,
          (unsigned long long)D.ClwbCalls,
          (unsigned long long)D.LinesScheduled,
          (unsigned long long)D.Drains, (unsigned long long)D.EmptyDrains);
      Out << Buf;
    }
    Out << "]}" << (I + 1 == Results.size() ? "" : ",") << "\n";
  }
  Out << "      ]\n    }";
  return Out.str();
}

std::string trajectoryFile(const std::string &PointJson) {
  return std::string(
             "{\n  \"schema\": \"crafty-kv-bench-v1\",\n"
             "  \"unit\": \"ops_per_sec = completed key operations per "
             "second over loopback TCP; latencies per request\",\n"
             "  \"points\": [\n") +
         PointJson + "\n  ]\n}\n";
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Content;
  return Out.good();
}

bool appendPoint(const std::string &Path, const std::string &PointJson) {
  std::ifstream In(Path);
  if (!In.good())
    return writeFile(Path, trajectoryFile(PointJson));
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string File = Buf.str();
  const std::string Marker = "\n  ]\n}";
  size_t Pos = File.rfind(Marker);
  if (Pos == std::string::npos) {
    std::fprintf(stderr,
                 "kv_loadgen: %s does not look like a trajectory file\n",
                 Path.c_str());
    return false;
  }
  File.insert(Pos, ",\n" + PointJson);
  return writeFile(Path, File);
}

//===----------------------------------------------------------------------===//
// Crash mode
//===----------------------------------------------------------------------===//

/// One write in a connection's ledger. Acked flips once the OK response
/// arrives; writes the server never answered stay unacked.
struct LedgerEntry {
  uint64_t Key;
  std::string Val;
  bool Acked = false;
};

int runCrashAudit(const Options &Opt) {
  std::string DataDir = Opt.DataDir;
  if (DataDir.empty()) {
    char Tmpl[] = "/tmp/kv_loadgen.XXXXXX";
    if (!mkdtemp(Tmpl)) {
      std::perror("mkdtemp");
      return 1;
    }
    DataDir = Tmpl;
  }
  const unsigned Shards = Opt.CrashShards ? Opt.CrashShards : 1;
  std::fprintf(stderr,
               "crash audit: datadir=%s shards=%u conns=%u target=%llu "
               "acked writes\n",
               DataDir.c_str(), Shards, Opt.Conns,
               (unsigned long long)Opt.CrashAfter);

  ServerProc Server = spawnServer(storeConfig(
      SystemKind::Crafty, Shards, DataDir, Opt.ValueBytes, Opt.Keyspace));

  // Phase 1: write-heavy load until the kill threshold. The keyspace is
  // partitioned: connection T owns keys {T, T + Conns, T + 2*Conns, ...},
  // so each key's write order is one connection's FIFO.
  std::atomic<uint64_t> Acked{0};
  std::atomic<bool> Killed{false};
  std::vector<std::vector<LedgerEntry>> Ledgers(Opt.Conns);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Opt.Conns; ++T) {
    Threads.emplace_back([&, T] {
      KvClient Client;
      if (!Client.connect(Server.Port))
        return;
      Rng R(0xdecafbadu + T);
      uint64_t Seq = 0;
      while (!Killed.load(std::memory_order_relaxed)) {
        uint64_t Slot = R.next() % (Opt.Keyspace / Opt.Conns + 1);
        uint64_t Key = T + Slot * Opt.Conns;
        Ledgers[T].push_back(
            LedgerEntry{Key, makeValue(Key, Seq++, Opt.ValueBytes), false});
        LedgerEntry &E = Ledgers[T].back();
        KvStatus St = Client.set(Key, E.Val);
        if (St == KvStatus::Ok) {
          E.Acked = true;
          Acked.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Transport death (the kill) or a full shard; either way this
          // write is unacknowledged.
          break;
        }
      }
    });
  }
  while (Acked.load(std::memory_order_relaxed) < Opt.CrashAfter)
    std::this_thread::yield();
  killServer(Server);
  Killed.store(true);
  for (auto &Th : Threads)
    Th.join();
  uint64_t TotalAcked = Acked.load();
  std::fprintf(stderr, "crash audit: SIGKILLed server after %llu acked\n",
               (unsigned long long)TotalAcked);

  // Phase 2: restart over the same images; the store attaches and
  // replays every shard's undo log before serving.
  ServerProc Server2 = spawnServer(storeConfig(
      SystemKind::Crafty, Shards, DataDir, Opt.ValueBytes, Opt.Keyspace));

  // Phase 3: audit. For each key, the recovered value must be a complete
  // value from the suffix of its write sequence starting at the last
  // acked write (acked-durability + absent-or-complete for the unacked
  // tail; rollback of a suffix of unacked writes is legal, losing an
  // acked one is not).
  KvClient Audit;
  if (!Audit.connect(Server2.Port)) {
    std::fprintf(stderr, "crash audit: cannot connect to restarted server\n");
    return 1;
  }
  uint64_t KeysAudited = 0, Violations = 0;
  for (unsigned T = 0; T != Opt.Conns; ++T) {
    // Per-key write sequences, in order.
    std::map<uint64_t, std::vector<const LedgerEntry *>> PerKey;
    for (const LedgerEntry &E : Ledgers[T])
      PerKey[E.Key].push_back(&E);
    for (const auto &[Key, Writes] : PerKey) {
      ++KeysAudited;
      size_t LastAcked = Writes.size();
      for (size_t I = Writes.size(); I-- > 0;)
        if (Writes[I]->Acked) {
          LastAcked = I;
          break;
        }
      std::string Got;
      KvStatus St = Audit.get(Key, Got);
      bool Ok;
      if (LastAcked == Writes.size()) {
        // Nothing acked: absent, or any complete unacked value.
        Ok = St == KvStatus::NotFound;
        if (!Ok && St == KvStatus::Ok)
          for (const LedgerEntry *W : Writes)
            Ok = Ok || W->Val == Got;
      } else {
        // Acked: must hold a value from the acked write or any later one.
        Ok = false;
        if (St == KvStatus::Ok)
          for (size_t I = LastAcked; I != Writes.size(); ++I)
            Ok = Ok || Writes[I]->Val == Got;
      }
      if (!Ok) {
        ++Violations;
        std::fprintf(stderr,
                     "  VIOLATION key=%llu status=%s got=%zu bytes "
                     "(last acked write %s)\n",
                     (unsigned long long)Key, kvStatusName(St), Got.size(),
                     LastAcked == Writes.size() ? "none" : "exists");
      }
    }
  }
  Audit.quit();
  stopServer(Server2);

  std::fprintf(stderr,
               "crash audit: %llu keys audited, %llu acked writes, "
               "%llu violations -> %s\n",
               (unsigned long long)KeysAudited,
               (unsigned long long)TotalAcked,
               (unsigned long long)Violations,
               Violations ? "FAILED" : "PASSED");
  return Violations ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  signal(SIGPIPE, SIG_IGN);
  Options Opt;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "kv_loadgen: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--label")
      Opt.Label = Next();
    else if (Arg == "--out")
      Opt.OutPath = Next();
    else if (Arg == "--append")
      Opt.AppendPath = Next();
    else if (Arg == "--ops")
      Opt.OpsPerCell = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--conns")
      Opt.Conns = (unsigned)std::atoi(Next());
    else if (Arg == "--value-bytes")
      Opt.ValueBytes = (size_t)std::atoi(Next());
    else if (Arg == "--read-pct")
      Opt.ReadPct = (unsigned)std::atoi(Next());
    else if (Arg == "--keyspace")
      Opt.Keyspace = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--crash-after")
      Opt.CrashAfter = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--crash-shards")
      Opt.CrashShards = (unsigned)std::atoi(Next());
    else if (Arg == "--repeats")
      Opt.Repeats = (unsigned)std::atoi(Next());
    else if (Arg == "--datadir")
      Opt.DataDir = Next();
    else if (Arg == "--scaling-gate")
      Opt.ScalingGate = std::atof(Next());
    else if (Arg == "--large-values")
      Opt.LargeValues = true;
    else {
      std::fprintf(
          stderr,
          "usage: kv_loadgen [--label NAME] [--append FILE | --out FILE]\n"
          "                  [--ops N] [--conns M] [--value-bytes V]\n"
          "                  [--read-pct P] [--keyspace K]\n"
          "                  [--crash-after N] [--crash-shards S]\n"
          "                  [--datadir DIR] [--scaling-gate R]\n"
          "                  [--repeats K] [--large-values]\n");
      return 2;
    }
  }
  if (Opt.Conns == 0)
    Opt.Conns = 1;
  if (Opt.Repeats == 0)
    Opt.Repeats = 1;

  if (Opt.CrashAfter)
    return runCrashAudit(Opt);

  double Scale = opsScale();
  uint64_t Ops = (uint64_t)((double)Opt.OpsPerCell * Scale);
  if (Ops == 0)
    Ops = 1;
  std::vector<CellResult> Results;
  if (Opt.LargeValues) {
    // Value-size sweep: one shard, single-op requests, sizes from 64 B
    // (inline cell) to 64 KiB (a 16-page heap extent). Per-cell op
    // counts shrink with value size so every cell moves a comparable
    // byte volume; the keyspace shrinks so the heap footprint stays
    // bounded (storeConfig sizes the heap from keyspace x value size).
    Opt.Keyspace = std::min<uint64_t>(Opt.Keyspace, 512);
    const size_t Sizes[] = {64, 256, 1024, 4096, 16384, 65536};
    const SystemKind Systems[] = {SystemKind::Crafty, SystemKind::NvHtm,
                                  SystemKind::NonDurable};
    for (SystemKind System : Systems)
      for (size_t VB : Sizes) {
        Options CellOpt = Opt;
        CellOpt.ValueBytes = VB;
        uint64_t CellOps =
            VB > 256 ? std::max<uint64_t>(Ops * 256 / VB, 256) : Ops;
        BenchCell Cell{System, 1, 1};
        std::vector<CellResult> Samples;
        for (unsigned Rep = 0; Rep != Opt.Repeats; ++Rep)
          Samples.push_back(runBenchCell(CellOpt, Cell, CellOps));
        std::sort(Samples.begin(), Samples.end(),
                  [](const CellResult &A, const CellResult &B) {
                    return A.OpsPerSec < B.OpsPerSec;
                  });
        CellResult R = Samples[Samples.size() / 2];
        std::fprintf(stderr,
                     "%-12s value=%6zuB  %9.0f ops/s  p50 %6.1fus  "
                     "p99 %6.1fus%s\n",
                     R.SystemName, R.ValueBytes, R.OpsPerSec, R.P50Us,
                     R.P99Us, Opt.Repeats > 1 ? "  (median)" : "");
        Results.push_back(R);
      }
  } else
  for (const BenchCell &Cell : Cells) {
    // --repeats R: fork a fresh server per repeat and keep the
    // median-throughput sample. Loopback service throughput on a shared
    // box is noisy (scheduler interleaving of server, clients and
    // neighbors); the median is robust to one bad repeat where the mean
    // and the best are not.
    std::vector<CellResult> Samples;
    for (unsigned Rep = 0; Rep != Opt.Repeats; ++Rep)
      Samples.push_back(runBenchCell(Opt, Cell, Ops));
    std::sort(Samples.begin(), Samples.end(),
              [](const CellResult &A, const CellResult &B) {
                return A.OpsPerSec < B.OpsPerSec;
              });
    CellResult R = Samples[Samples.size() / 2];
    std::fprintf(stderr,
                 "%-12s shards=%u batch=%zu  %9.0f ops/s  p50 %6.1fus  "
                 "p99 %6.1fus%s\n",
                 R.SystemName, R.Shards, R.Batch, R.OpsPerSec, R.P50Us,
                 R.P99Us, Opt.Repeats > 1 ? "  (median)" : "");
    Results.push_back(R);
  }

  // The shard-scaling claim as an exit status: with the share-nothing
  // server, adding shards must not cost throughput.
  bool GateFailed = false;
  if (Opt.ScalingGate > 0) {
    size_t MaxBatch = 0;
    for (const CellResult &R : Results)
      MaxBatch = std::max(MaxBatch, R.Batch);
    for (const CellResult &Multi : Results) {
      if (std::strcmp(Multi.SystemName, "Crafty") != 0 || Multi.Shards == 1 ||
          Multi.Batch != MaxBatch)
        continue;
      for (const CellResult &One : Results) {
        if (std::strcmp(One.SystemName, "Crafty") != 0 || One.Shards != 1 ||
            One.Batch != Multi.Batch)
          continue;
        double Ratio =
            One.OpsPerSec > 0 ? Multi.OpsPerSec / One.OpsPerSec : 0;
        bool Ok = Ratio >= Opt.ScalingGate;
        std::fprintf(stderr,
                     "scaling gate: Crafty batch=%zu %u-shard/%u-shard = "
                     "%.2fx (need >= %.2fx) -> %s\n",
                     Multi.Batch, Multi.Shards, One.Shards, Ratio,
                     Opt.ScalingGate, Ok ? "ok" : "FAILED");
        GateFailed |= !Ok;
      }
    }
  }

  std::string Point = formatPoint(Opt.Label, Scale, Results);
  if (!Opt.AppendPath.empty()) {
    if (!appendPoint(Opt.AppendPath, Point))
      return 1;
    std::fprintf(stderr, "appended point '%s' to %s\n", Opt.Label.c_str(),
                 Opt.AppendPath.c_str());
  } else if (!Opt.OutPath.empty()) {
    if (!writeFile(Opt.OutPath, trajectoryFile(Point)))
      return 1;
    std::fprintf(stderr, "wrote %s\n", Opt.OutPath.c_str());
  } else {
    std::printf("%s\n", trajectoryFile(Point).c_str());
  }
  return GateFailed ? 1 : 0;
}
