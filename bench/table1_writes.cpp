//===- bench/table1_writes.cpp - Table 1 reproduction ---------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: average persistent writes per executed persistent
// transaction, for every workload at every evaluated thread count.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

using namespace crafty;

int main() {
  std::printf("Table 1: persistent writes per transaction (average)\n");
  std::printf("%-26s", "workload \\ threads");
  for (unsigned T : PaperThreadCounts)
    std::printf("%7u", T);
  std::printf("\n");
  for (WorkloadKind Kind : AllWorkloads)
    runWritesPerTxnRow(Kind, PaperThreadCounts, stdout);
  std::printf("\nPaper reference: bank 10.0, B+tree 13.2-14.0, kmeans 25.0,"
              "\n  vacation 5.5-8.0, labyrinth ~177, ssca2 2.0, genome ~2.1,"
              " intruder 1.8\n");
  return 0;
}
