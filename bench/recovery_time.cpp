//===- bench/recovery_time.cpp - Recovery-cost evaluation -----------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper leaves the recovery observer's implementation and evaluation
// to future work (Section 6); this bench provides that evaluation: wall
// clock for full recovery (scan, rollback, log zeroing) as a function of
// log size, thread count, and transaction size, plus the rollback volume
// recovered.
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"
#include "recovery/Recovery.h"
#include "support/Clock.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace crafty;

namespace {

void measure(unsigned Threads, size_t LogEntries, unsigned WritesPerTxn,
             int OpsPerThread) {
  PMemConfig PC;
  PC.PoolBytes = 256ull << 20;
  PC.Mode = PMemMode::Tracked;
  PC.DrainLatencyNs = 0;
  PMemPool Pool(PC);
  HtmRuntime Htm{HtmConfig{}};
  CraftyConfig CC;
  CC.NumThreads = Threads;
  CC.LogEntriesPerThread = LogEntries;
  CraftyRuntime Rt(Pool, Htm, CC);
  auto *Data = static_cast<uint64_t *>(
      Rt.carve((size_t)WritesPerTxn * Threads * CacheLineBytes));

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      for (int I = 0; I != OpsPerThread; ++I)
        Rt.run(T, [&](TxnContext &Tx) {
          for (unsigned W = 0; W != WritesPerTxn; ++W) {
            uint64_t *Addr = &Data[((size_t)T * WritesPerTxn + W) * 8];
            Tx.store(Addr, Tx.load(Addr) + 1);
          }
        });
    });
  for (auto &Th : Workers)
    Th.join();

  Pool.crash();
  uint64_t T0 = monotonicNanos();
  RecoveryReport Rep = RecoveryObserver::recoverPool(Pool);
  uint64_t Elapsed = monotonicNanos() - T0;
  std::printf("%8u %12zu %10u %10zu %12zu %12zu %12.2f\n", Threads,
              LogEntries, WritesPerTxn, Rep.SequencesFound,
              Rep.SequencesRolledBack, Rep.WordsRestored,
              (double)Elapsed * 1e-3);
  std::fflush(stdout);
}

} // namespace

int main() {
  std::printf("Recovery cost (the future-work evaluation the paper defers)"
              "\n%8s %12s %10s %10s %12s %12s %12s\n", "threads",
              "log entries", "writes/txn", "seqs found", "rolled back",
              "words", "usec");
  // Log size sweep.
  for (size_t Log : {1024ul, 4096ul, 16384ul, 65536ul})
    measure(2, Log, 8, 400);
  // Thread sweep.
  for (unsigned T : {1u, 2u, 4u, 8u, 16u})
    measure(T, 16384, 8, 300);
  // Transaction size sweep.
  for (unsigned W : {1u, 8u, 64u, 256u})
    measure(2, 16384, W, 200);
  return 0;
}
