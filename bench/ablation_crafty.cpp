//===- bench/ablation_crafty.cpp - Crafty design-choice ablations ---------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Ablations of the design choices DESIGN.md calls out:
//   1. The chunked-mode initial k (Section 4.4): persist-latency
//      amortization versus abort exposure, measured on a capacity-bound
//      transaction that always runs under the SGL.
//   2. Undo-log size: smaller circular logs trigger the Section 5.2
//      half-log checks (and forced commits) more often.
//   3. Conflict-detection granularity: cache-line (HTM-faithful) versus
//      word (no false sharing).
//   4. Hardware write capacity: how much of the workload falls back to
//      the SGL as the emulated write set shrinks.
//
//===----------------------------------------------------------------------===//

#include "core/Crafty.h"
#include "harness/Harness.h"
#include "support/Clock.h"

#include <atomic>
#include <functional>
#include <thread>

using namespace crafty;

namespace {

double timedSglTransaction(unsigned InitialK, unsigned Repeat) {
  PMemConfig PC;
  PC.PoolBytes = 64 << 20;
  PC.DrainLatencyNs = 300;
  PMemPool Pool(PC);
  HtmConfig HC;
  HC.MaxWriteSetLines = 16; // Capacity-bound: always chunked.
  HtmRuntime Htm(HC);
  CraftyConfig CC;
  CC.NumThreads = 1;
  CC.InitialChunkK = InitialK;
  CC.SglAttemptThreshold = 1;
  CraftyRuntime Rt(Pool, Htm, CC);
  auto *Data = static_cast<uint64_t *>(Rt.carve(256 * CacheLineBytes));
  uint64_t T0 = monotonicNanos();
  for (unsigned R = 0; R != Repeat; ++R)
    Rt.run(0, [&](TxnContext &Tx) {
      for (unsigned I = 0; I != 128; ++I) // One line per write.
        Tx.store(&Data[I * 8], R + I);
    });
  return (double)(monotonicNanos() - T0) * 1e-3 / Repeat;
}

void ablateChunkK() {
  std::printf("\n-- Ablation 1: chunked-mode initial k (128-write "
              "transaction, write capacity 16 lines, 300 ns drain) --\n");
  std::printf("%-10s %14s\n", "initial k", "usec per txn");
  for (unsigned K : {1u, 2u, 4u, 8u, 16u, 64u})
    std::printf("%-10u %14.1f\n", K, timedSglTransaction(K, 40));
}

double timedSmallLog(size_t LogEntries, uint64_t MaxLag) {
  PMemConfig PC;
  PC.PoolBytes = 64 << 20;
  PC.DrainLatencyNs = 300;
  PC.MaxThreads = 8;
  PMemPool Pool(PC);
  HtmRuntime Htm((HtmConfig()));
  CraftyConfig CC;
  CC.NumThreads = 2;
  CC.LogEntriesPerThread = LogEntries;
  CC.MaxLag = MaxLag;
  CraftyRuntime Rt(Pool, Htm, CC);
  auto *Data = static_cast<uint64_t *>(Rt.carve(CacheLineBytes));
  constexpr unsigned Ops = 4000;
  uint64_t T0 = monotonicNanos();
  for (unsigned I = 0; I != Ops; ++I)
    Rt.run(0, [&](TxnContext &Tx) {
      Tx.store(&Data[0], Tx.load(&Data[0]) + 1);
      Tx.store(&Data[1], I);
    });
  return (double)(monotonicNanos() - T0) * 1e-3 / Ops;
}

void ablateLogSize() {
  std::printf("\n-- Ablation 2: circular-log size and MAX_LAG (2-write "
              "transactions; smaller logs and tighter lag run the "
              "Section 5.2 checks more often) --\n");
  std::printf("%-14s %-14s %14s\n", "log entries", "MAX_LAG",
              "usec per txn");
  for (size_t Entries : {64ul, 256ul, 4096ul, 16384ul})
    std::printf("%-14zu %-14s %14.2f\n", Entries, "default",
                timedSmallLog(Entries, CraftyConfig().MaxLag));
  for (uint64_t Lag : {64ull, 1024ull})
    std::printf("%-14zu %-14llu %14.2f\n", 16384ul,
                (unsigned long long)Lag, timedSmallLog(16384, Lag));
}

void ablateGranularity() {
  std::printf("\n-- Ablation 3: conflict-detection granularity on "
              "bank (high contention), 4 threads --\n");
  std::printf("%-10s %16s %16s\n", "shift", "ops/sec", "hw conflicts");
  for (unsigned Shift : {6u, 3u}) {
    ExperimentConfig C;
    C.Workload = WorkloadKind::BankHigh;
    C.System = SystemKind::Crafty;
    C.Threads = 4;
    C.OpsPerThread = 1500;
    C.DrainLatencyNs = 0;
    C.Htm.ConflictGranularityShift = Shift;
    ExperimentResult R = runExperiment(C);
    std::printf("%-10s %16.0f %16llu\n",
                Shift == 6 ? "line (64B)" : "word (8B)", R.OpsPerSecond,
                (unsigned long long)R.Hw.AbortConflict);
  }
}

void ablateWriteCapacity() {
  std::printf("\n-- Ablation 4: emulated HTM write capacity on the "
              "labyrinth kernel (long transactions) --\n");
  std::printf("%-12s %14s %14s %14s\n", "lines", "ops/sec", "sgl txns",
              "capacity aborts");
  for (size_t Lines : {64ul, 128ul, 256ul, 512ul}) {
    ExperimentConfig C;
    C.Workload = WorkloadKind::Labyrinth;
    C.System = SystemKind::Crafty;
    C.Threads = 2;
    C.OpsPerThread = 60;
    C.DrainLatencyNs = 0;
    C.Htm.MaxWriteSetLines = Lines;
    ExperimentResult R = runExperiment(C);
    std::printf("%-12zu %14.0f %14llu %14llu\n", Lines, R.OpsPerSecond,
                (unsigned long long)R.Txn.Sgl,
                (unsigned long long)R.Hw.AbortCapacity);
  }
}

/// One contention-knob cell: two threads over a shared account array,
/// three transfers to one read-only balance sum (so read-only clock
/// elision has something to elide), zero persist latency -- the
/// instruction- and contention-path cost is the subject.
struct ContentionCell {
  double UsecPerTxn = 0;
  uint64_t SnapshotExtensions = 0;
  uint64_t ConflictAborts = 0;
  double ClockBumpsPerTxn = 0;
};

/// The ablation's two transaction bodies, annotated for crafty-lint like
/// the KV shard's entry points: the transfer writes exactly 2 words, the
/// balance check none.
CRAFTY_TX_SAFE CRAFTY_TX_CAPACITY(2) void transferBody(TxnContext &Tx,
                                                       uint64_t *From,
                                                       uint64_t *To) {
  Tx.store(From, Tx.load(From) - 1);
  Tx.store(To, Tx.load(To) + 1);
}

CRAFTY_TX_SAFE CRAFTY_TX_CAPACITY(0) void balanceBody(TxnContext &Tx,
                                                      const uint64_t *Data,
                                                      unsigned Start,
                                                      unsigned Accounts) {
  constexpr unsigned WordsPerLine = CacheLineBytes / 8;
  uint64_t Sum = 0;
  for (unsigned K = 0; K != 8; ++K)
    Sum += Tx.load(&Data[((Start + K) % Accounts) * WordsPerLine]);
  (void)Sum;
}

ContentionCell
timedContention(const std::function<void(CraftyConfig &)> &Tweak) {
  PMemConfig PC;
  PC.PoolBytes = 64 << 20;
  PC.DrainLatencyNs = 0;
  PC.MaxThreads = 8;
  PMemPool Pool(PC);
  HtmRuntime Htm((HtmConfig()));
  CraftyConfig CC;
  CC.NumThreads = 2;
  Tweak(CC);
  CraftyRuntime Rt(Pool, Htm, CC);
  constexpr unsigned Accounts = 64;
  auto *Data = static_cast<uint64_t *>(Rt.carve(Accounts * CacheLineBytes));
  constexpr unsigned WordsPerLine = CacheLineBytes / 8;
  constexpr unsigned Ops = 3000;
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::thread Workers[2];
  for (unsigned T = 0; T != 2; ++T)
    Workers[T] = std::thread([&, T] {
      uint64_t Rng = T * 0x9e3779b9u + 1;
      Ready.fetch_add(1, std::memory_order_release);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (unsigned I = 0; I != Ops; ++I) {
        Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
        unsigned A = (Rng >> 33) % Accounts;
        unsigned B = (Rng >> 44) % Accounts;
        if (I % 4 == 3) // Read-only balance check.
          Rt.run(T, [&](TxnContext &Tx) { balanceBody(Tx, Data, A, Accounts); });
        else // Transfer.
          Rt.run(T, [&](TxnContext &Tx) {
            transferBody(Tx, &Data[A * WordsPerLine], &Data[B * WordsPerLine]);
          });
      }
    });
  while (Ready.load(std::memory_order_acquire) != 2)
    std::this_thread::yield();
  uint64_t T0 = monotonicNanos();
  Go.store(true, std::memory_order_release);
  for (auto &W : Workers)
    W.join();
  uint64_t T1 = monotonicNanos();

  ContentionCell Cell;
  Cell.UsecPerTxn = (double)(T1 - T0) * 1e-3 / (2.0 * Ops);
  HtmStats Hw = Rt.htmStats();
  PtmStats Txn = Rt.txnStats();
  Cell.SnapshotExtensions = Hw.SnapshotExtensions;
  Cell.ConflictAborts = Hw.AbortConflict;
  uint64_t Txns = Txn.transactions();
  Cell.ClockBumpsPerTxn =
      Txns ? (double)(Hw.ClockBumps + Htm.nonTxClockBumps()) / (double)Txns
           : 0.0;
  return Cell;
}

void ablateContentionKnobs() {
  std::printf("\n-- Ablation 5: contention knobs (2 threads, 64 shared "
              "accounts, 3:1 transfer:read-only mix, 0 ns drain) --\n");
  std::printf("%-26s %12s %12s %12s %12s\n", "knob position", "usec/txn",
              "extensions", "conflicts", "bumps/txn");
  struct Row {
    const char *Name;
    std::function<void(CraftyConfig &)> Tweak;
  };
  const Row Rows[] = {
      {"all on (default)", [](CraftyConfig &) {}},
      {"-ReadOnlyClockElision",
       [](CraftyConfig &C) { C.ReadOnlyClockElision = false; }},
      {"-SnapshotExtension",
       [](CraftyConfig &C) { C.SnapshotExtension = false; }},
      {"-SortWriteSet", [](CraftyConfig &C) { C.SortWriteSet = false; }},
      {"dense write set (16)",
       [](CraftyConfig &C) { C.WriteSetHashThreshold = 16; }},
      {"no retry backoff",
       [](CraftyConfig &C) {
         C.BackoffMinSpins = 1;
         C.BackoffMaxSpins = 0;
       }},
  };
  for (const Row &R : Rows) {
    ContentionCell Cell = timedContention(R.Tweak);
    std::printf("%-26s %12.2f %12llu %12llu %12.3f\n", R.Name,
                Cell.UsecPerTxn, (unsigned long long)Cell.SnapshotExtensions,
                (unsigned long long)Cell.ConflictAborts,
                Cell.ClockBumpsPerTxn);
  }
}

} // namespace

int main() {
  std::printf("Crafty design-choice ablations\n");
  ablateChunkK();
  ablateLogSize();
  ablateGranularity();
  ablateWriteCapacity();
  ablateContentionKnobs();
  return 0;
}
