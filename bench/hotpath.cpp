//===- bench/hotpath.cpp - Hot-path perf-trajectory benchmark -------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Machine-readable hot-path benchmark: one committed persistent
// transaction per operation, wall-clock timed, emitted as JSON so every
// PR can append a trajectory point to BENCH_hotpath.json and the
// project's "as fast as the hardware allows" goal has a measured history.
//
// Three transaction shapes bracket the hot paths the runtime optimizes:
//
//  - bank_10w:     10 writes to distinct cache lines (the micro_ops /
//                  Figure 6 bank profile) -- undo staging, rollback and
//                  two hardware transactions per op on Crafty.
//  - ssca2_2w:     2 writes (the Figure 8 ssca2 profile) -- fixed
//                  per-transaction overhead dominates.
//  - btree_lookup: 16 strided reads, 1 write every 16th op (a B+tree
//                  lookup-heavy mix) -- the read-only fast path and the
//                  write-set-empty load path dominate.
//
// Persist latency is emulated at zero and (except for checker rows) the
// pool runs in latency-only mode: the bench isolates instruction-path
// cost, which is what hot-path PRs change; figure-level orderings with
// realistic persist latency remain the harness benches' job.
//
// Output schema (see README "Hot-path perf trajectory"):
//   {"schema": "crafty-hotpath-bench-v1", "points": [
//      {"label": ..., "ops_scale": ..., "results": [
//         {"shape": ..., "system": ..., "threads": N, "checkers": bool,
//          "ops": N, "ns_per_op": X, "ops_per_sec": Y,
//          "clwb_calls": N, "lines_scheduled": N, "drains": N,
//          "empty_drains": N}, ...]}, ...]}
// (the flush counters appear on points recorded since the coalescing
// layer landed; earlier points lack them).
//
// Usage: hotpath [--label NAME] [--out FILE | --append FILE]
//                [--stats-out FILE]
//   --out       write a fresh single-point trajectory file
//   --append    splice the point into FILE's points array (creating FILE
//               if absent); this is how BENCH_hotpath.json accumulates
//   --stats-out additionally write a crafty-flush-stats-v1 JSON with the
//               per-cell flush counters and coalescing ratios (the CI
//               perf-smoke artifact)
// CRAFTY_BENCH_OPS_SCALE scales the per-cell operation counts.
//
//===----------------------------------------------------------------------===//

#include "baselines/Factory.h"
#include "core/Crafty.h"
#include "support/Clock.h"
#include "support/Rng.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace crafty;

namespace {

constexpr unsigned WordsPerLine = CacheLineBytes / 8;

struct Shape {
  const char *Name;
  unsigned WritesPerOp; // Upper bound; sizes the baselines' redo logs.
  uint64_t BaseOps;
};

const Shape Shapes[] = {
    {"bank_10w", 10, 20000},
    {"ssca2_2w", 2, 40000},
    {"btree_lookup", 1, 40000},
};

struct Cell {
  SystemKind System;
  unsigned Threads;
  bool Checkers;
};

// Crafty + baselines single-threaded; Crafty again with both dynamic
// checkers attached (their "on" cost is part of the trajectory) and on a
// 1/2/4/8-thread sweep, where commit-time read-set validation and the
// contention machinery (backoff, snapshot extension, clock elision)
// actually run (single-threaded commits are serialization-adjacent to
// their snapshot and skip validation).
const Cell Cells[] = {
    {SystemKind::NonDurable, 1, false}, {SystemKind::DudeTm, 1, false},
    {SystemKind::NvHtm, 1, false},      {SystemKind::Crafty, 1, false},
    {SystemKind::Crafty, 1, true},      {SystemKind::Crafty, 2, false},
    {SystemKind::Crafty, 4, false},     {SystemKind::Crafty, 8, false},
};

double opsScale() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read before threads spawn.
  if (const char *Scale = std::getenv("CRAFTY_BENCH_OPS_SCALE")) {
    double F = std::atof(Scale);
    if (F > 0)
      return F;
  }
  return 1.0;
}

struct CellResult {
  const char *ShapeName;
  const char *SystemName;
  unsigned Threads;
  bool Checkers;
  uint64_t Ops;
  double NsPerOp;
  double OpsPerSec;
  /// Flush-pipeline counters for the whole cell (PMemPool::stats()):
  /// requests vs write-backs actually scheduled after coalescing, and
  /// drain traffic split into useful and empty fences.
  PMemStats Flush;
  /// Aggregated hardware-transaction and persistent-transaction counters
  /// (abort causes, clock bumps, SGL waits) for the contention columns of
  /// the --stats-out report.
  HtmStats Htm;
  PtmStats Txn;
  /// Global-clock advances taken outside hardware transactions (chunked
  /// writebacks, rollbacks, SGL release) over the cell.
  uint64_t NonTxClockBumps;
};

CellResult runCell(const Shape &S, const Cell &C, uint64_t Ops) {
  // Per-thread data: bank/ssca2 write disjoint lines (the contention-free
  // shape isolates per-access cost; conflicts are the figure benches'
  // subject), btree_lookup reads a shared array.
  constexpr unsigned DataLinesPerThread = 64;
  constexpr unsigned LookupLines = 4096;

  size_t RedoBudget =
      (size_t)Ops * (S.WritesPerOp + 2) * 32 + (1 << 20);
  PMemConfig PC;
  PC.PoolBytes = (64ull << 20) + (uint64_t)RedoBudget * (C.Threads + 1) +
                 (uint64_t)LookupLines * CacheLineBytes;
  // Checker rows need tracked line state (PersistCheck audits real CLWB
  // and eviction traffic); plain rows run latency-only.
  PC.Mode = C.Checkers ? PMemMode::Tracked : PMemMode::LatencyOnly;
  PC.DrainLatencyNs = 0;
  PC.MaxThreads = C.Threads + 4;
  PMemPool Pool(PC);
  HtmRuntime Htm((HtmConfig()));

  BackendOptions BO;
  BO.NumThreads = C.Threads;
  BO.EnablePersistCheck = C.Checkers;
  BO.EnableTxRaceCheck = C.Checkers;
  BO.NvHtmLogBytesPerThread =
      std::max<size_t>(BO.NvHtmLogBytesPerThread, RedoBudget);
  BO.DudeTmLogBytesTotal = std::max<size_t>(BO.DudeTmLogBytesTotal,
                                            RedoBudget * C.Threads);
  std::unique_ptr<PtmBackend> Backend = createBackend(C.System, Pool, Htm, BO);

  auto *Data = static_cast<uint64_t *>(Pool.carve(
      (size_t)C.Threads * DataLinesPerThread * CacheLineBytes));
  auto *Lookup =
      static_cast<uint64_t *>(Pool.carve(LookupLines * CacheLineBytes));

  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != C.Threads; ++T) {
    Threads.emplace_back([&, T] {
      uint64_t *Mine = Data + (size_t)T * DataLinesPerThread * WordsPerLine;
      Ready.fetch_add(1, std::memory_order_release);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      if (std::strcmp(S.Name, "bank_10w") == 0) {
        for (uint64_t I = 0; I != Ops; ++I)
          Backend->run(T, [&](TxnContext &Tx) {
            for (unsigned W = 0; W != 10; ++W)
              Tx.store(&Mine[W * WordsPerLine], I + W);
          });
      } else if (std::strcmp(S.Name, "ssca2_2w") == 0) {
        for (uint64_t I = 0; I != Ops; ++I)
          Backend->run(T, [&](TxnContext &Tx) {
            Tx.store(&Mine[(I % 32) * WordsPerLine], I);
            Tx.store(&Mine[(I % 32 + 32) * WordsPerLine], I + 1);
          });
      } else { // btree_lookup
        for (uint64_t I = 0; I != Ops; ++I) {
          uint64_t Root = (I * 2654435761ull) % LookupLines;
          Backend->run(T, [&](TxnContext &Tx) {
            uint64_t Sum = 0;
            for (unsigned D = 0; D != 16; ++D)
              Sum += Tx.load(
                  &Lookup[((Root + D * 37) % LookupLines) * WordsPerLine]);
            if (I % 16 == 0)
              Tx.store(&Mine[(I / 16 % DataLinesPerThread) * WordsPerLine],
                       Sum + I);
          });
        }
      }
    });
  }
  while (Ready.load(std::memory_order_acquire) != C.Threads)
    std::this_thread::yield();
  uint64_t T0 = monotonicNanos();
  Go.store(true, std::memory_order_release);
  for (auto &Th : Threads)
    Th.join();
  Backend->quiesce();
  uint64_t T1 = monotonicNanos();

  CellResult R;
  R.ShapeName = S.Name;
  R.SystemName = Backend->name();
  R.Threads = C.Threads;
  R.Checkers = C.Checkers;
  R.Ops = Ops * C.Threads;
  R.NsPerOp = R.Ops ? (double)(T1 - T0) / (double)R.Ops : 0;
  R.OpsPerSec = T1 > T0 ? (double)R.Ops * 1e9 / (double)(T1 - T0) : 0;
  R.Flush = Pool.stats();
  R.Htm = Backend->htmStats();
  R.Txn = Backend->txnStats();
  R.NonTxClockBumps = Htm.nonTxClockBumps();
  return R;
}

std::string formatPoint(const std::string &Label, double Scale,
                        const std::vector<CellResult> &Results) {
  std::ostringstream Out;
  char Buf[256];
  Out << "    {\n      \"label\": \"" << Label << "\",\n";
  std::snprintf(Buf, sizeof(Buf), "      \"ops_scale\": %g,\n", Scale);
  Out << Buf;
  Out << "      \"results\": [\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const CellResult &R = Results[I];
    std::snprintf(Buf, sizeof(Buf),
                  "        {\"shape\": \"%s\", \"system\": \"%s\", "
                  "\"threads\": %u, \"checkers\": %s, \"ops\": %llu, "
                  "\"ns_per_op\": %.1f, \"ops_per_sec\": %.0f, "
                  "\"clwb_calls\": %llu, \"lines_scheduled\": %llu, "
                  "\"drains\": %llu, \"empty_drains\": %llu}%s\n",
                  R.ShapeName, R.SystemName, R.Threads,
                  R.Checkers ? "true" : "false",
                  (unsigned long long)R.Ops, R.NsPerOp, R.OpsPerSec,
                  (unsigned long long)R.Flush.ClwbCalls,
                  (unsigned long long)R.Flush.LinesScheduled,
                  (unsigned long long)R.Flush.Drains,
                  (unsigned long long)R.Flush.EmptyDrains,
                  I + 1 == Results.size() ? "" : ",");
    Out << Buf;
  }
  Out << "      ]\n    }";
  return Out.str();
}

/// Standalone flush- and contention-counter report (--stats-out): the
/// same cells with per-operation flush rates, the coalescing ratio,
/// per-cause abort counts and the clock-bump-per-commit ratio, for the
/// CI artifact alongside the trajectory point.
std::string formatStats(const std::string &Label, double Scale,
                        const std::vector<CellResult> &Results) {
  std::ostringstream Out;
  char Buf[384];
  Out << "{\n  \"schema\": \"crafty-flush-stats-v1\",\n  \"label\": \""
      << Label << "\",\n";
  std::snprintf(Buf, sizeof(Buf), "  \"ops_scale\": %g,\n", Scale);
  Out << Buf << "  \"results\": [\n";
  for (size_t I = 0; I != Results.size(); ++I) {
    const CellResult &R = Results[I];
    double Ops = R.Ops ? (double)R.Ops : 1.0;
    double Coalesced =
        R.Flush.ClwbCalls
            ? 1.0 - (double)R.Flush.LinesScheduled / (double)R.Flush.ClwbCalls
            : 0.0;
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"shape\": \"%s\", \"system\": \"%s\", \"threads\": %u, "
        "\"checkers\": %s, \"clwb_calls\": %llu, \"lines_scheduled\": "
        "%llu, \"drains\": %llu, \"empty_drains\": %llu, "
        "\"clwb_calls_per_op\": %.2f, \"lines_scheduled_per_op\": %.2f, "
        "\"coalesced_fraction\": %.3f,\n",
        R.ShapeName, R.SystemName, R.Threads, R.Checkers ? "true" : "false",
        (unsigned long long)R.Flush.ClwbCalls,
        (unsigned long long)R.Flush.LinesScheduled,
        (unsigned long long)R.Flush.Drains,
        (unsigned long long)R.Flush.EmptyDrains,
        (double)R.Flush.ClwbCalls / Ops, (double)R.Flush.LinesScheduled / Ops,
        Coalesced);
    Out << Buf;
    // Contention columns: abort taxonomy, fallback serialization and
    // clock pressure. Clock bumps count both in-transaction commit bumps
    // and the non-transactional ones (chunked batches, SGL release);
    // read-only clock elision shows up as a ratio below 1.
    uint64_t Txns = R.Txn.transactions();
    double BumpsPerCommit =
        Txns ? (double)(R.Htm.ClockBumps + R.NonTxClockBumps) / (double)Txns
             : 0.0;
    std::snprintf(
        Buf, sizeof(Buf),
        "     \"aborts_conflict\": %llu, \"aborts_capacity\": %llu, "
        "\"aborts_explicit\": %llu, \"aborts_zero\": %llu, "
        "\"sgl_commits\": %llu, \"sgl_waits\": %llu, "
        "\"snapshot_extensions\": %llu, \"clock_bumps\": %llu, "
        "\"nontx_clock_bumps\": %llu, \"clock_bumps_per_commit\": %.3f}%s\n",
        (unsigned long long)R.Htm.AbortConflict,
        (unsigned long long)R.Htm.AbortCapacity,
        (unsigned long long)R.Htm.AbortExplicit,
        (unsigned long long)R.Htm.AbortZero,
        (unsigned long long)R.Txn.Sgl, (unsigned long long)R.Txn.SglWaits,
        (unsigned long long)R.Htm.SnapshotExtensions,
        (unsigned long long)R.Htm.ClockBumps,
        (unsigned long long)R.NonTxClockBumps, BumpsPerCommit,
        I + 1 == Results.size() ? "" : ",");
    Out << Buf;
  }
  Out << "  ]\n}\n";
  return Out.str();
}

/// Report-only scaling sanity check (the CI perf-smoke gate): 2-thread
/// Crafty bank_10w throughput should not fall below 1-thread. On 1-core
/// runners oversubscription makes this expected, so the check warns
/// rather than fails.
void checkScaling(const std::vector<CellResult> &Results) {
  for (const char *ShapeName : {"bank_10w"}) {
    double Ops1 = 0, Ops2 = 0;
    for (const CellResult &R : Results) {
      if (std::strcmp(R.ShapeName, ShapeName) != 0 || R.Checkers ||
          std::strcmp(R.SystemName, "Crafty") != 0)
        continue;
      if (R.Threads == 1)
        Ops1 = R.OpsPerSec;
      else if (R.Threads == 2)
        Ops2 = R.OpsPerSec;
    }
    if (Ops1 > 0 && Ops2 > 0 && Ops2 < Ops1)
      std::fprintf(stderr,
                   "hotpath: SCALING-WARNING %s: 2-thread Crafty "
                   "%.0f ops/s < 1-thread %.0f ops/s (report-only; "
                   "expected on single-core runners)\n",
                   ShapeName, Ops2, Ops1);
  }
}

std::string trajectoryFile(const std::string &PointJson) {
  return std::string("{\n  \"schema\": \"crafty-hotpath-bench-v1\",\n"
                     "  \"unit\": \"ns_per_op = wall nanoseconds per "
                     "committed transaction; drain latency 0\",\n"
                     "  \"points\": [\n") +
         PointJson + "\n  ]\n}\n";
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << Content;
  return Out.good();
}

/// Splices \p PointJson before the closing "]" of the points array. The
/// file format is produced only by this tool, so a textual splice against
/// the fixed layout is reliable (and keeps the bench dependency-free).
bool appendPoint(const std::string &Path, const std::string &PointJson) {
  std::ifstream In(Path);
  if (!In.good())
    return writeFile(Path, trajectoryFile(PointJson));
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string File = Buf.str();
  const std::string Marker = "\n  ]\n}";
  size_t Pos = File.rfind(Marker);
  if (Pos == std::string::npos) {
    std::fprintf(stderr,
                 "hotpath: %s does not look like a trajectory file\n",
                 Path.c_str());
    return false;
  }
  File.insert(Pos, ",\n" + PointJson);
  return writeFile(Path, File);
}

} // namespace

int main(int argc, char **argv) {
  std::string Label = "unlabeled";
  std::string OutPath, AppendPath, StatsPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "hotpath: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--label")
      Label = Next();
    else if (Arg == "--out")
      OutPath = Next();
    else if (Arg == "--append")
      AppendPath = Next();
    else if (Arg == "--stats-out")
      StatsPath = Next();
    else {
      std::fprintf(stderr,
                   "usage: hotpath [--label NAME] [--out FILE | --append "
                   "FILE] [--stats-out FILE]\n");
      return 2;
    }
  }

  double Scale = opsScale();
  std::vector<CellResult> Results;
  for (const Shape &S : Shapes) {
    uint64_t Ops = (uint64_t)((double)S.BaseOps * Scale);
    if (Ops == 0)
      Ops = 1;
    for (const Cell &C : Cells) {
      // Checker rows run a fraction of the ops: the checkers' shadow
      // bookkeeping is O(accesses) and their absolute ns/op would
      // otherwise dominate wall time without adding information.
      uint64_t CellOps = C.Checkers ? std::max<uint64_t>(Ops / 10, 1) : Ops;
      CellResult R = runCell(S, C, CellOps);
      std::fprintf(stderr, "%-14s %-18s t=%u checkers=%d  %9.1f ns/op\n",
                   R.ShapeName, R.SystemName, R.Threads, (int)R.Checkers,
                   R.NsPerOp);
      Results.push_back(R);
    }
  }
  checkScaling(Results);

  if (!StatsPath.empty()) {
    if (!writeFile(StatsPath, formatStats(Label, Scale, Results)))
      return 1;
    std::fprintf(stderr, "wrote flush stats to %s\n", StatsPath.c_str());
  }

  std::string Point = formatPoint(Label, Scale, Results);
  if (!AppendPath.empty()) {
    if (!appendPoint(AppendPath, Point))
      return 1;
    std::fprintf(stderr, "appended point '%s' to %s\n", Label.c_str(),
                 AppendPath.c_str());
  } else if (!OutPath.empty()) {
    if (!writeFile(OutPath, trajectoryFile(Point)))
      return 1;
    std::fprintf(stderr, "wrote %s\n", OutPath.c_str());
  } else {
    std::printf("%s\n", trajectoryFile(Point).c_str());
  }
  return 0;
}
