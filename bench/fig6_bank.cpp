//===- bench/fig6_bank.cpp - Figure 6 reproduction ------------------------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 6: throughput of all six configurations on the bank
// microbenchmark at three contention levels (high: 1024 accounts, medium:
// 4096 accounts, none: partitioned), 300 ns emulated NVM latency,
// normalized to single-thread Non-durable.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

using namespace crafty;

int main() {
  std::printf("Figure 6: bank microbenchmark, 5 transfers (10 writes) per "
              "transaction, 300 ns drain\n");
  for (WorkloadKind Kind : {WorkloadKind::BankHigh, WorkloadKind::BankMedium,
                            WorkloadKind::BankNone}) {
    SweepOptions O;
    O.Workload = Kind;
    runThroughputSweep(O, stdout);
  }
  return 0;
}
