//===- bench/compensated_latency.cpp - Emulation-cost compensation --------===//
//
// Part of the Crafty reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The software HTM charges ~10-20 ns per instrumented access where real
// HTM tracks accesses for free, inflating every system's compute by
// roughly an order of magnitude relative to the 300 ns NVM write-back
// latency. The paper's results live in the regime where persist latency,
// not transaction compute, dominates. This bench restores that regime by
// scaling the emulated drain latency by the measured per-access inflation
// (sweeping 300 ns -> 1/3/10 us), so the orderings the paper reports can
// be read at the compensated points. See EXPERIMENTS.md for the
// calibration argument.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

using namespace crafty;

int main() {
  std::printf("Emulation-cost-compensated latency sweep: the paper's 300 ns"
              " regime corresponds to roughly 3 us here\n");
  for (uint64_t Latency : {300ull, 1000ull, 3000ull, 10000ull}) {
    std::printf("\n##### drain latency %llu ns #####\n",
                (unsigned long long)Latency);
    for (WorkloadKind Kind :
         {WorkloadKind::BankHigh, WorkloadKind::BankNone,
          WorkloadKind::BTreeInsert, WorkloadKind::VacationLow}) {
      SweepOptions O;
      O.Workload = Kind;
      O.DrainLatencyNs = Latency;
      O.ThreadCounts = {1, 2, 4, 8, 16};
      runThroughputSweep(O, stdout);
    }
  }
  return 0;
}
